package logicmin

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// PLA is a parsed single-output PLA: an ON-set cover and a
// don't-care cover over NumInputs variables, with cubes on the heap.
type PLA struct {
	NumInputs int
	On        []mheap.Ref
	DC        []mheap.Ref
}

// Free releases all the PLA's cubes.
func (p *PLA) Free(h *mheap.Heap) {
	freeCover(h, p.On)
	freeCover(h, p.DC)
	p.On, p.DC = nil, nil
}

// ParsePLA reads the Berkeley PLA subset: ".i n", ".o 1", optional
// ".p k", cube lines "<inputs> <output>" where output 1 is ON and
// output - is don't-care, terminated by optional ".e".
func ParsePLA(a mlib.Allocator, src string) (*PLA, error) {
	p := &PLA{}
	for lineno, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == ".i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("logicmin: line %d: bad .i", lineno+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > 24 {
				return nil, fmt.Errorf("logicmin: line %d: bad input count", lineno+1)
			}
			p.NumInputs = n
		case fields[0] == ".o":
			if len(fields) != 2 || fields[1] != "1" {
				return nil, fmt.Errorf("logicmin: line %d: only single-output PLAs supported", lineno+1)
			}
		case fields[0] == ".p", fields[0] == ".e", fields[0] == ".ilb", fields[0] == ".ob":
			// cube-count hint and labels: ignored
		case strings.HasPrefix(fields[0], "."):
			return nil, fmt.Errorf("logicmin: line %d: unsupported directive %s", lineno+1, fields[0])
		default:
			if p.NumInputs == 0 {
				return nil, fmt.Errorf("logicmin: line %d: cube before .i", lineno+1)
			}
			if len(fields) != 2 || len(fields[0]) != p.NumInputs {
				return nil, fmt.Errorf("logicmin: line %d: bad cube line %q", lineno+1, line)
			}
			c, err := cubeFromString(a, fields[0])
			if err != nil {
				return nil, fmt.Errorf("logicmin: line %d: %v", lineno+1, err)
			}
			switch fields[1] {
			case "1":
				p.On = append(p.On, c)
			case "-", "2":
				p.DC = append(p.DC, c)
			case "0":
				a.Heap().Free(c) // explicit OFF cube: implied anyway
			default:
				a.Heap().Free(c)
				return nil, fmt.Errorf("logicmin: line %d: bad output %q", lineno+1, fields[1])
			}
		}
	}
	if p.NumInputs == 0 {
		return nil, fmt.Errorf("logicmin: missing .i directive")
	}
	return p, nil
}

// FormatPLA renders a cover back to PLA text.
func FormatPLA(h *mheap.Heap, nvars int, on []mheap.Ref) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o 1\n.p %d\n", nvars, len(on))
	for _, c := range on {
		b.WriteString(cubeString(h, c))
		b.WriteString(" 1\n")
	}
	b.WriteString(".e\n")
	return b.String()
}

// expand grows each cube literal-by-literal against the OFF-set: a
// literal may be raised to don't-care when the raised cube still
// intersects no OFF-set cube. Raised cubes then swallow any cubes they
// contain.
func expand(a mlib.Allocator, on, off []mheap.Ref) []mheap.Ref {
	h := a.Heap()
	out := make([]mheap.Ref, 0, len(on))
	for _, c := range on {
		e := cubeCopy(a, c)
		d := h.Data(e)
		for i := range d {
			if d[i] == lDash {
				continue
			}
			saved := d[i]
			d[i] = lDash
			ok := true
			for _, oc := range off {
				if !cubesDisjoint(h, e, oc) {
					ok = false
					break
				}
			}
			if !ok {
				d[i] = saved
			}
		}
		out = append(out, e)
	}
	freeCover(h, on)
	// Single-cube containment: drop cubes contained in a surviving
	// other. For equal cubes the earlier one wins.
	dead := make([]bool, len(out))
	for i, c := range out {
		for j, d := range out {
			if i == j || dead[j] {
				continue
			}
			if cubeContains(h, d, c) && !(cubeContains(h, c, d) && j > i) {
				dead[i] = true
				break
			}
		}
	}
	kept := make([]mheap.Ref, 0, len(out))
	for i, c := range out {
		if dead[i] {
			h.Free(c)
		} else {
			kept = append(kept, c)
		}
	}
	return kept
}

// irredundant removes cubes covered by the rest of the cover together
// with the don't-care set, using tautology checks on cofactors.
func irredundant(a mlib.Allocator, on, dc []mheap.Ref, nvars int) []mheap.Ref {
	h := a.Heap()
	kept := make([]mheap.Ref, 0, len(on))
	alive := make([]bool, len(on))
	for i := range alive {
		alive[i] = true
	}
	for i, c := range on {
		// rest = (on \ c) ∪ dc, cofactored against c.
		var rest []mheap.Ref
		for j, o := range on {
			if j != i && alive[j] {
				rest = append(rest, o)
			}
		}
		rest = append(rest, dc...)
		cof := cofactorCover(a, rest, c)
		covered := isTautology(a, cof, nvars)
		freeCover(h, cof)
		if covered {
			alive[i] = false
			h.Free(c)
		} else {
			kept = append(kept, c)
		}
	}
	return kept
}

// Minimize runs the espresso-lite loop (complement, expand,
// irredundant to convergence) on a PLA, consuming its ON cover and
// returning the minimized cover. The DC cover is left intact.
func Minimize(a mlib.Allocator, p *PLA) []mheap.Ref {
	h := a.Heap()
	// OFF-set: complement of ON ∪ DC.
	onDC := append(append([]mheap.Ref{}, p.On...), p.DC...)
	off := complement(a, onDC, p.NumInputs)

	cover := p.On
	p.On = nil
	prev := len(cover) + 1
	for pass := 0; pass < 8 && len(cover) < prev; pass++ {
		prev = len(cover)
		cover = expand(a, cover, off)
		cover = irredundant(a, cover, p.DC, p.NumInputs)
	}
	freeCover(h, off)
	return cover
}

// Equivalent samples random minterms to check (F − DC) ⊆ M ⊆ F ∪ DC:
// the minimized cover must keep every care ON point and gain no OFF
// point. Points in the don't-care set are free in either direction
// (including ON points that are also listed as don't-cares — the care
// set is ON minus DC, as in espresso).
func Equivalent(h *mheap.Heap, nvars int, on, dc, minimized []mheap.Ref, samples int, r *xrand.Rand) error {
	limit := uint64(1) << uint(nvars)
	for i := 0; i < samples; i++ {
		x := r.Uint64() % limit
		inOn := coverEval(h, on, x)
		inDC := coverEval(h, dc, x)
		inMin := coverEval(h, minimized, x)
		if inOn && !inDC && !inMin {
			return fmt.Errorf("logicmin: minterm %b in care ON-set but dropped", x)
		}
		if !inOn && !inDC && inMin {
			return fmt.Errorf("logicmin: minterm %b in OFF-set but covered", x)
		}
	}
	return nil
}

// GeneratePLA builds a random single-output PLA with the given inputs
// and cube counts, deterministic in the seed.
func GeneratePLA(nvars, onCubes, dcCubes int, seed uint64) string {
	r := xrand.New(seed)
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o 1\n.p %d\n", nvars, onCubes+dcCubes)
	emit := func(out byte) {
		for i := 0; i < nvars; i++ {
			switch r.Intn(3) {
			case 0:
				b.WriteByte('0')
			case 1:
				b.WriteByte('1')
			default:
				b.WriteByte('-')
			}
		}
		b.WriteByte(' ')
		b.WriteByte(out)
		b.WriteByte('\n')
	}
	for i := 0; i < onCubes; i++ {
		emit('1')
	}
	for i := 0; i < dcCubes; i++ {
		emit('-')
	}
	b.WriteString(".e\n")
	return b.String()
}

// Result reports a minimization batch.
type Result struct {
	CubesIn  int
	CubesOut int
	Events   []trace.Event
}

// RunBatch parses and minimizes each PLA on a fresh heap, verifying
// equivalence by sampling, and returns the combined trace — one
// minimization per program phase, as the paper's Espresso runs were.
func RunBatch(plas []string, samples int) (*Result, error) {
	h := mheap.New()
	var events []trace.Event
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	a := mlib.Raw{H: h}
	res := &Result{}
	r := xrand.New(0xE59)
	for i, src := range plas {
		p, err := ParsePLA(a, src)
		if err != nil {
			return res, fmt.Errorf("pla %d: %w", i, err)
		}
		onCopy := copyCover(a, p.On)
		res.CubesIn += len(p.On)
		min := Minimize(a, p)
		res.CubesOut += len(min)
		if err := Equivalent(h, p.NumInputs, onCopy, p.DC, min, samples, r); err != nil {
			return res, fmt.Errorf("pla %d: %w", i, err)
		}
		freeCover(h, onCopy)
		freeCover(h, min)
		p.Free(h)
		h.Tick(50_000) // inter-problem work
	}
	res.Events = events
	return res, nil
}
