package logicmin

import (
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func newAlloc() (mlib.Raw, *mheap.Heap) {
	h := mheap.New()
	return mlib.Raw{H: h}, h
}

func mustCube(t *testing.T, a mlib.Allocator, s string) mheap.Ref {
	t.Helper()
	c, err := cubeFromString(a, s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCubeStringRoundTrip(t *testing.T) {
	a, h := newAlloc()
	for _, s := range []string{"01-", "----", "1", "0101"} {
		c := mustCube(t, a, s)
		if got := cubeString(h, c); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := cubeFromString(a, "01x"); err == nil {
		t.Error("bad cube accepted")
	}
}

func TestCubeContains(t *testing.T) {
	a, h := newAlloc()
	cases := []struct {
		p, q string
		want bool
	}{
		{"---", "01-", true},
		{"01-", "010", true},
		{"01-", "01-", true},
		{"010", "01-", false},
		{"1--", "0--", false},
	}
	for _, c := range cases {
		p, q := mustCube(t, a, c.p), mustCube(t, a, c.q)
		if got := cubeContains(h, p, q); got != c.want {
			t.Errorf("contains(%s, %s) = %v", c.p, c.q, got)
		}
	}
}

func TestCubesDisjoint(t *testing.T) {
	a, h := newAlloc()
	cases := []struct {
		p, q string
		want bool
	}{
		{"0--", "1--", true},
		{"0--", "-1-", false},
		{"01-", "0-1", false},
		{"01-", "00-", true},
	}
	for _, c := range cases {
		p, q := mustCube(t, a, c.p), mustCube(t, a, c.q)
		if got := cubesDisjoint(h, p, q); got != c.want {
			t.Errorf("disjoint(%s, %s) = %v", c.p, c.q, got)
		}
	}
}

func TestCubeEval(t *testing.T) {
	a, h := newAlloc()
	c := mustCube(t, a, "1-0") // x0=1, x2=0
	cases := []struct {
		x    uint64
		want bool
	}{
		{0b001, true}, {0b011, true}, {0b101, false}, {0b000, false},
	}
	for _, tc := range cases {
		if got := cubeEval(h, c, tc.x); got != tc.want {
			t.Errorf("eval(%03b) = %v", tc.x, got)
		}
	}
}

func TestTautology(t *testing.T) {
	a, h := newAlloc()
	// x ∪ ¬x is a tautology.
	cover := []mheap.Ref{mustCube(t, a, "1--"), mustCube(t, a, "0--")}
	if !isTautology(a, cover, 3) {
		t.Error("x ∪ ¬x not recognized as tautology")
	}
	freeCover(h, cover)
	// A single non-universe cube is not.
	c2 := []mheap.Ref{mustCube(t, a, "1--")}
	if isTautology(a, c2, 3) {
		t.Error("single literal reported tautology")
	}
	freeCover(h, c2)
	// Empty cover is not.
	if isTautology(a, nil, 3) {
		t.Error("empty cover reported tautology")
	}
	// All-dash cube is.
	c3 := []mheap.Ref{mustCube(t, a, "---")}
	if !isTautology(a, c3, 3) {
		t.Error("universe cube not tautology")
	}
	freeCover(h, c3)
}

func TestComplementAgainstBruteForce(t *testing.T) {
	// Property: for random small covers, complement(F) holds exactly
	// the minterms F does not.
	r := xrand.New(31)
	for trial := 0; trial < 40; trial++ {
		a, h := newAlloc()
		nvars := 3 + r.Intn(4) // 3..6
		var cover []mheap.Ref
		ncubes := r.Intn(5)
		for i := 0; i < ncubes; i++ {
			c := newCube(a, nvars)
			d := h.Data(c)
			for j := range d {
				d[j] = byte(r.Intn(3))
			}
			cover = append(cover, c)
		}
		compl := complement(a, cover, nvars)
		for x := uint64(0); x < 1<<uint(nvars); x++ {
			inF := coverEval(h, cover, x)
			inC := coverEval(h, compl, x)
			if inF == inC {
				t.Fatalf("trial %d: minterm %b in both/neither (F=%v C=%v)", trial, x, inF, inC)
			}
		}
		freeCover(h, cover)
		freeCover(h, compl)
		if h.NumObjects() != 0 {
			t.Fatalf("trial %d: %d objects leaked", trial, h.NumObjects())
		}
	}
}

func TestParsePLA(t *testing.T) {
	a, h := newAlloc()
	src := `# comment
.i 3
.o 1
.p 3
01- 1
1-1 1
000 -
.e`
	p, err := ParsePLA(a, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs != 3 || len(p.On) != 2 || len(p.DC) != 1 {
		t.Fatalf("parsed %d inputs, %d on, %d dc", p.NumInputs, len(p.On), len(p.DC))
	}
	if cubeString(h, p.On[0]) != "01-" {
		t.Fatalf("first cube %s", cubeString(h, p.On[0]))
	}
	p.Free(h)
}

func TestParsePLAErrors(t *testing.T) {
	a, _ := newAlloc()
	cases := []string{
		"01- 1",            // cube before .i
		".i 0\n",           // bad input count
		".i 3\n.o 2\n",     // multi-output
		".i 3\n01 1\n",     // wrong cube width
		".i 3\n01x 1\n",    // bad character
		".i 3\n010 9\n",    // bad output
		".i 3\n.unknown\n", // unknown directive
		"",                 // no .i at all
	}
	for _, src := range cases {
		if _, err := ParsePLA(a, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMinimizeClassicExamples(t *testing.T) {
	// f = x'y + xy (3 vars, extra var irrelevant) minimizes to y.
	a, h := newAlloc()
	src := ".i 2\n.o 1\n01 1\n11 1\n"
	p, err := ParsePLA(a, src)
	if err != nil {
		t.Fatal(err)
	}
	min := Minimize(a, p)
	if len(min) != 1 {
		t.Fatalf("minimized to %d cubes, want 1", len(min))
	}
	if got := cubeString(h, min[0]); got != "-1" {
		t.Fatalf("minimized cube %s, want -1", got)
	}
	freeCover(h, min)
	p.Free(h)
}

func TestMinimizeWithDontCares(t *testing.T) {
	// ON = {000}, DC = {001, 01-}: can expand to 0--.
	a, h := newAlloc()
	src := ".i 3\n.o 1\n000 1\n001 -\n01- -\n"
	p, err := ParsePLA(a, src)
	if err != nil {
		t.Fatal(err)
	}
	min := Minimize(a, p)
	if len(min) != 1 || cubeString(h, min[0]) != "0--" {
		t.Fatalf("minimized: %v cubes, first %s", len(min), cubeString(h, min[0]))
	}
	freeCover(h, min)
	p.Free(h)
}

func TestMinimizeNeverGrows(t *testing.T) {
	r := xrand.New(77)
	for trial := 0; trial < 15; trial++ {
		a, h := newAlloc()
		src := GeneratePLA(6+r.Intn(3), 8+r.Intn(12), r.Intn(4), r.Uint64())
		p, err := ParsePLA(a, src)
		if err != nil {
			t.Fatal(err)
		}
		before := len(p.On)
		onCopy := copyCover(a, p.On)
		dcRefs := p.DC
		min := Minimize(a, p)
		if len(min) > before {
			t.Fatalf("trial %d: grew from %d to %d cubes", trial, before, len(min))
		}
		if err := Equivalent(h, p.NumInputs, onCopy, dcRefs, min, 2000, xrand.New(1)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		freeCover(h, onCopy)
		freeCover(h, min)
		p.Free(h)
		if h.NumObjects() != 0 {
			t.Fatalf("trial %d: leaked %d objects", trial, h.NumObjects())
		}
	}
}

func TestMinimizeExhaustiveEquivalence(t *testing.T) {
	// For small input counts, check every minterm rather than a sample.
	r := xrand.New(123)
	for trial := 0; trial < 20; trial++ {
		a, h := newAlloc()
		nvars := 4
		src := GeneratePLA(nvars, 5, 2, r.Uint64())
		p, err := ParsePLA(a, src)
		if err != nil {
			t.Fatal(err)
		}
		onCopy := copyCover(a, p.On)
		dc := p.DC
		min := Minimize(a, p)
		for x := uint64(0); x < 1<<uint(nvars); x++ {
			inOn := coverEval(h, onCopy, x)
			inDC := coverEval(h, dc, x)
			inMin := coverEval(h, min, x)
			if inOn && !inDC && !inMin {
				t.Fatalf("trial %d: care ON minterm %b lost", trial, x)
			}
			if !inOn && !inDC && inMin {
				t.Fatalf("trial %d: OFF minterm %b gained", trial, x)
			}
		}
		freeCover(h, onCopy)
		freeCover(h, min)
		p.Free(h)
	}
}

func TestFormatPLAParsesBack(t *testing.T) {
	a, h := newAlloc()
	p, err := ParsePLA(a, ".i 3\n.o 1\n01- 1\n1-1 1\n")
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPLA(h, 3, p.On)
	if !strings.Contains(text, "01- 1") {
		t.Fatalf("format output:\n%s", text)
	}
	p2, err := ParsePLA(a, text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(p2.On) != 2 {
		t.Fatalf("reparse got %d cubes", len(p2.On))
	}
	p.Free(h)
	p2.Free(h)
}

func TestRunBatchTrace(t *testing.T) {
	plas := []string{
		GeneratePLA(8, 14, 3, 1),
		GeneratePLA(9, 16, 2, 2),
		GeneratePLA(7, 12, 4, 3),
	}
	res, err := RunBatch(plas, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.CubesOut > res.CubesIn {
		t.Fatalf("batch grew covers: %d -> %d", res.CubesIn, res.CubesOut)
	}
	if err := trace.Validate(res.Events); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	s, err := trace.Measure(res.Events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs < 500 {
		t.Fatalf("only %d allocations", s.Allocs)
	}
	if s.Allocs != s.Frees {
		t.Fatalf("leaked: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

func TestGeneratePLADeterministic(t *testing.T) {
	if GeneratePLA(6, 10, 2, 9) != GeneratePLA(6, 10, 2, 9) {
		t.Fatal("generator not deterministic")
	}
	if GeneratePLA(6, 10, 2, 9) == GeneratePLA(6, 10, 2, 10) {
		t.Fatal("different seeds identical")
	}
}

func BenchmarkMinimize(b *testing.B) {
	src := GeneratePLA(8, 16, 3, 42)
	for i := 0; i < b.N; i++ {
		a, h := mlib.Raw{H: mheap.New()}, (*mheap.Heap)(nil)
		_ = h
		p, err := ParsePLA(a, src)
		if err != nil {
			b.Fatal(err)
		}
		min := Minimize(a, p)
		freeCover(a.Heap(), min)
		p.Free(a.Heap())
	}
}
