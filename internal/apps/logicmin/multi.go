package logicmin

// Multi-output PLA support. Real espresso minimizes all outputs
// jointly over a shared cube space; this implementation minimizes each
// output against its own don't-care set independently (a standard
// simplification that preserves per-output correctness, at the cost of
// missing sharing between outputs). Parsing and formatting use the
// Berkeley multi-output cube rows: one input pattern followed by one
// character per output — 1 (ON), 0 (OFF), - or ~ (don't care).

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// MultiPLA is a parsed multi-output PLA: one single-output PLA per
// output function, sharing the input variable count.
type MultiPLA struct {
	NumInputs  int
	NumOutputs int
	Funcs      []*PLA
}

// Free releases all covers.
func (m *MultiPLA) Free(h *mheap.Heap) {
	for _, p := range m.Funcs {
		p.Free(h)
	}
	m.Funcs = nil
}

// ParseMultiPLA reads a PLA with any number of outputs.
func ParseMultiPLA(a mlib.Allocator, src string) (*MultiPLA, error) {
	m := &MultiPLA{}
	for lineno, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == ".i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("logicmin: line %d: bad .i", lineno+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > 24 {
				return nil, fmt.Errorf("logicmin: line %d: bad input count", lineno+1)
			}
			m.NumInputs = n
		case fields[0] == ".o":
			if len(fields) != 2 {
				return nil, fmt.Errorf("logicmin: line %d: bad .o", lineno+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > 64 {
				return nil, fmt.Errorf("logicmin: line %d: bad output count", lineno+1)
			}
			m.NumOutputs = n
			for i := 0; i < n; i++ {
				m.Funcs = append(m.Funcs, &PLA{NumInputs: m.NumInputs})
			}
		case fields[0] == ".p", fields[0] == ".e", fields[0] == ".ilb", fields[0] == ".ob":
			// ignored
		case strings.HasPrefix(fields[0], "."):
			return nil, fmt.Errorf("logicmin: line %d: unsupported directive %s", lineno+1, fields[0])
		default:
			if m.NumInputs == 0 || m.NumOutputs == 0 {
				return nil, fmt.Errorf("logicmin: line %d: cube before .i/.o", lineno+1)
			}
			if len(fields) != 2 || len(fields[0]) != m.NumInputs || len(fields[1]) != m.NumOutputs {
				return nil, fmt.Errorf("logicmin: line %d: bad cube line %q", lineno+1, line)
			}
			for o := 0; o < m.NumOutputs; o++ {
				var dst *[]mheap.Ref
				switch fields[1][o] {
				case '1':
					dst = &m.Funcs[o].On
				case '-', '~', '2':
					dst = &m.Funcs[o].DC
				case '0':
					continue
				default:
					return nil, fmt.Errorf("logicmin: line %d: bad output character %q", lineno+1, fields[1][o])
				}
				c, err := cubeFromString(a, fields[0])
				if err != nil {
					return nil, fmt.Errorf("logicmin: line %d: %v", lineno+1, err)
				}
				*dst = append(*dst, c)
			}
		}
	}
	if m.NumInputs == 0 || m.NumOutputs == 0 {
		return nil, fmt.Errorf("logicmin: missing .i or .o directive")
	}
	return m, nil
}

// MinimizeAll minimizes every output function independently, consuming
// the ON covers and returning one minimized cover per output. The DC
// covers stay owned by the MultiPLA.
func (m *MultiPLA) MinimizeAll(a mlib.Allocator) [][]mheap.Ref {
	out := make([][]mheap.Ref, m.NumOutputs)
	for o, p := range m.Funcs {
		out[o] = Minimize(a, p)
	}
	return out
}

// FormatMultiPLA renders per-output covers back to multi-output PLA
// text using one-hot output masks (each cube row asserts exactly one
// output; don't-cares are not re-emitted).
func FormatMultiPLA(h *mheap.Heap, nvars int, covers [][]mheap.Ref) string {
	var b strings.Builder
	total := 0
	for _, c := range covers {
		total += len(c)
	}
	fmt.Fprintf(&b, ".i %d\n.o %d\n.p %d\n", nvars, len(covers), total)
	for o, cover := range covers {
		mask := strings.Repeat("0", o) + "1" + strings.Repeat("0", len(covers)-o-1)
		for _, c := range cover {
			b.WriteString(cubeString(h, c))
			b.WriteByte(' ')
			b.WriteString(mask)
			b.WriteByte('\n')
		}
	}
	b.WriteString(".e\n")
	return b.String()
}

// GenerateMultiPLA builds a random multi-output PLA, deterministic in
// the seed.
func GenerateMultiPLA(nvars, nouts, cubes int, seed uint64) string {
	r := xrand.New(seed)
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o %d\n.p %d\n", nvars, nouts, cubes)
	for i := 0; i < cubes; i++ {
		for v := 0; v < nvars; v++ {
			b.WriteByte("01-"[r.Intn(3)])
		}
		b.WriteByte(' ')
		any := false
		outs := make([]byte, nouts)
		for o := 0; o < nouts; o++ {
			switch r.Intn(4) {
			case 0:
				outs[o] = '1'
				any = true
			case 1:
				outs[o] = '-'
			default:
				outs[o] = '0'
			}
		}
		if !any {
			outs[r.Intn(nouts)] = '1'
		}
		b.Write(outs)
		b.WriteByte('\n')
	}
	b.WriteString(".e\n")
	return b.String()
}

// RunMultiBatch parses and minimizes multi-output PLAs on a recording
// heap, verifying each output function by sampling.
func RunMultiBatch(plas []string, samples int) (*Result, error) {
	h := mheap.New()
	var events []trace.Event
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	a := mlib.Raw{H: h}
	res := &Result{}
	r := xrand.New(0xE5A)
	for i, src := range plas {
		m, err := ParseMultiPLA(a, src)
		if err != nil {
			return res, fmt.Errorf("pla %d: %w", i, err)
		}
		onCopies := make([][]mheap.Ref, m.NumOutputs)
		for o, p := range m.Funcs {
			onCopies[o] = copyCover(a, p.On)
			res.CubesIn += len(p.On)
		}
		covers := m.MinimizeAll(a)
		for o, cover := range covers {
			res.CubesOut += len(cover)
			if err := Equivalent(h, m.NumInputs, onCopies[o], m.Funcs[o].DC, cover, samples, r); err != nil {
				return res, fmt.Errorf("pla %d output %d: %w", i, o, err)
			}
			freeCover(h, onCopies[o])
			freeCover(h, cover)
		}
		m.Free(h)
		h.Tick(50_000)
	}
	res.Events = events
	return res, nil
}
