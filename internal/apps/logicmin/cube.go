// Package logicmin is the Espresso stand-in: a cube-based two-level
// logic minimizer working on covers of single-output boolean
// functions. Every cube lives on the simulated heap, and the
// allocation-heavy phases of the real program — complementation by
// Shannon expansion, expansion against the OFF-set, irredundant-cover
// extraction by tautology checking — are all here, so a minimization
// run produces the pass-structured allocation trace that made Espresso
// an interesting GC benchmark: covers built up during a pass and freed
// together at its end.
package logicmin

import (
	"fmt"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// Literal values inside a cube, one byte per input variable.
const (
	lZero = 0 // variable complemented
	lOne  = 1 // variable true
	lDash = 2 // don't care
)

// Cube operations. A cube is a heap object with one byte per input.

func newCube(a mlib.Allocator, nvars int) mheap.Ref {
	c := a.Alloc(0, nvars)
	d := a.Heap().Data(c)
	for i := range d {
		d[i] = lDash
	}
	return c
}

func cubeFromString(a mlib.Allocator, s string) (mheap.Ref, error) {
	c := a.Alloc(0, len(s))
	d := a.Heap().Data(c)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			d[i] = lZero
		case '1':
			d[i] = lOne
		case '-', '2':
			d[i] = lDash
		default:
			a.Heap().Free(c)
			return mheap.Nil, fmt.Errorf("logicmin: bad cube character %q", s[i])
		}
	}
	return c, nil
}

func cubeString(h *mheap.Heap, c mheap.Ref) string {
	d := h.Data(c)
	var b strings.Builder
	for _, v := range d {
		switch v {
		case lZero:
			b.WriteByte('0')
		case lOne:
			b.WriteByte('1')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

func cubeCopy(a mlib.Allocator, c mheap.Ref) mheap.Ref {
	h := a.Heap()
	n := h.Size(c)
	out := a.Alloc(0, n)
	copy(h.Data(out), h.Data(c))
	return out
}

// cubeContains reports p ⊇ q: every assignment in q is in p.
func cubeContains(h *mheap.Heap, p, q mheap.Ref) bool {
	dp, dq := h.Data(p), h.Data(q)
	for i := range dp {
		if dp[i] != lDash && dp[i] != dq[i] {
			return false
		}
	}
	return true
}

// cubesDisjoint reports whether p ∩ q is empty (some variable is
// required 0 by one and 1 by the other).
func cubesDisjoint(h *mheap.Heap, p, q mheap.Ref) bool {
	dp, dq := h.Data(p), h.Data(q)
	for i := range dp {
		if (dp[i] == lZero && dq[i] == lOne) || (dp[i] == lOne && dq[i] == lZero) {
			return true
		}
	}
	return false
}

// cubeEval reports whether the cube covers the minterm x (bit i of x
// is input i).
func cubeEval(h *mheap.Heap, c mheap.Ref, x uint64) bool {
	d := h.Data(c)
	for i, v := range d {
		bit := byte(x>>uint(i)) & 1
		if v != lDash && v != bit {
			return false
		}
	}
	return true
}

// Cover helpers. A cover is a Go slice of cube refs; the refs (and
// their storage) live on the managed heap, like the cube-pointer
// arrays of the C original.

func freeCover(h *mheap.Heap, cover []mheap.Ref) {
	for _, c := range cover {
		h.Free(c)
	}
}

func copyCover(a mlib.Allocator, cover []mheap.Ref) []mheap.Ref {
	out := make([]mheap.Ref, 0, len(cover))
	for _, c := range cover {
		out = append(out, cubeCopy(a, c))
	}
	return out
}

// coverEval reports whether any cube covers minterm x.
func coverEval(h *mheap.Heap, cover []mheap.Ref, x uint64) bool {
	for _, c := range cover {
		if cubeEval(h, c, x) {
			return true
		}
	}
	return false
}

// cofactorCube computes the cofactor of cube c with respect to cube p
// (the Shannon cofactor generalized to cubes). It returns Nil when the
// cofactor is empty.
func cofactorCube(a mlib.Allocator, c, p mheap.Ref) mheap.Ref {
	h := a.Heap()
	if cubesDisjoint(h, c, p) {
		return mheap.Nil
	}
	out := cubeCopy(a, c)
	d := h.Data(out)
	dp := h.Data(p)
	for i := range d {
		if dp[i] != lDash {
			d[i] = lDash
		}
	}
	return out
}

// cofactorCover cofactors a whole cover against cube p.
func cofactorCover(a mlib.Allocator, cover []mheap.Ref, p mheap.Ref) []mheap.Ref {
	var out []mheap.Ref
	for _, c := range cover {
		if cc := cofactorCube(a, c, p); cc != mheap.Nil {
			out = append(out, cc)
		}
	}
	return out
}

// selectBinate picks the variable that appears in the most cubes in
// both polarities (the classic espresso branching heuristic); -1 if
// the cover is unate in every variable (no 0/1 conflict).
func selectBinate(h *mheap.Heap, cover []mheap.Ref, nvars int) int {
	best, bestScore := -1, 0
	for v := 0; v < nvars; v++ {
		zeros, ones := 0, 0
		for _, c := range cover {
			switch h.Data(c)[v] {
			case lZero:
				zeros++
			case lOne:
				ones++
			}
		}
		if zeros > 0 && ones > 0 && zeros+ones > bestScore {
			best, bestScore = v, zeros+ones
		}
	}
	return best
}

// isTautology reports whether the cover covers the entire space of
// nvars inputs, by unate reduction and Shannon recursion.
func isTautology(a mlib.Allocator, cover []mheap.Ref, nvars int) bool {
	h := a.Heap()
	if len(cover) == 0 {
		return false
	}
	for _, c := range cover {
		allDash := true
		for _, v := range h.Data(c) {
			if v != lDash {
				allDash = false
				break
			}
		}
		if allDash {
			return true
		}
	}
	v := selectBinate(h, cover, nvars)
	if v < 0 {
		// Unate cover without an all-dash cube cannot be a tautology
		// (unate reduction theorem).
		return false
	}
	// Recurse on both cofactors of variable v.
	for _, val := range []byte{lZero, lOne} {
		branch := newCube(a, nvars)
		h.Data(branch)[v] = val
		cof := cofactorCover(a, cover, branch)
		h.Free(branch)
		taut := isTautology(a, cof, nvars)
		freeCover(h, cof)
		if !taut {
			return false
		}
	}
	return true
}

// complement computes the OFF-set of a cover by Shannon expansion —
// the most allocation-intensive phase, as in the original.
func complement(a mlib.Allocator, cover []mheap.Ref, nvars int) []mheap.Ref {
	h := a.Heap()
	if len(cover) == 0 {
		return []mheap.Ref{newCube(a, nvars)} // complement of ∅ is the universe
	}
	for _, c := range cover {
		allDash := true
		for _, v := range h.Data(c) {
			if v != lDash {
				allDash = false
				break
			}
		}
		if allDash {
			return nil // complement of the universe is empty
		}
	}
	// Single-cube complement: one cube per non-dash literal (De
	// Morgan, disjoint sharp).
	if len(cover) == 1 {
		var out []mheap.Ref
		src := h.Data(cover[0])
		for i, v := range src {
			if v == lDash {
				continue
			}
			c := newCube(a, nvars)
			d := h.Data(c)
			// Fix preceding literals to their cube values to keep the
			// result disjoint.
			for j := 0; j < i; j++ {
				if src[j] != lDash {
					d[j] = src[j]
				}
			}
			if v == lZero {
				d[i] = lOne
			} else {
				d[i] = lZero
			}
			out = append(out, c)
		}
		return out
	}
	v := selectBinate(h, cover, nvars)
	if v < 0 {
		// Unate: complement as intersection of single-cube
		// complements via recursive splitting on any non-dash var.
		v = firstActiveVar(h, cover)
		if v < 0 {
			return nil
		}
	}
	var out []mheap.Ref
	for _, val := range []byte{lZero, lOne} {
		branch := newCube(a, nvars)
		h.Data(branch)[v] = val
		cof := cofactorCover(a, cover, branch)
		compl := complement(a, cof, nvars)
		freeCover(h, cof)
		// AND the branch literal back into each complement cube.
		for _, c := range compl {
			h.Data(c)[v] = val
			out = append(out, c)
		}
		h.Free(branch)
	}
	return out
}

func firstActiveVar(h *mheap.Heap, cover []mheap.Ref) int {
	for _, c := range cover {
		for i, v := range h.Data(c) {
			if v != lDash {
				return i
			}
		}
	}
	return -1
}
