package logicmin

import (
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestParseMultiPLA(t *testing.T) {
	a, h := newAlloc()
	src := `.i 3
.o 2
01- 10
1-1 01
000 1-
111 -1
.e`
	m, err := ParseMultiPLA(a, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInputs != 3 || m.NumOutputs != 2 {
		t.Fatalf("dims %d/%d", m.NumInputs, m.NumOutputs)
	}
	// Output 0: ON = {01-, 000}, DC = {111}.
	if len(m.Funcs[0].On) != 2 || len(m.Funcs[0].DC) != 1 {
		t.Fatalf("output 0: %d on, %d dc", len(m.Funcs[0].On), len(m.Funcs[0].DC))
	}
	// Output 1: ON = {1-1, 111}, DC = {000}.
	if len(m.Funcs[1].On) != 2 || len(m.Funcs[1].DC) != 1 {
		t.Fatalf("output 1: %d on, %d dc", len(m.Funcs[1].On), len(m.Funcs[1].DC))
	}
	m.Free(h)
	if h.NumObjects() != 0 {
		t.Fatalf("leaked %d", h.NumObjects())
	}
}

func TestParseMultiPLAErrors(t *testing.T) {
	a, _ := newAlloc()
	cases := []string{
		".i 2\n01 1\n",         // no .o
		".o 2\n.i 2\n01 1\n",   // output width mismatch
		".i 2\n.o 2\n01 1x\n",  // bad output char
		".i 2\n.o 0\n",         // bad output count
		".i 2\n.o 2\n011 11\n", // input width mismatch
		".i 2\n.o 2\n.weird\n", // unknown directive
	}
	for _, src := range cases {
		if _, err := ParseMultiPLA(a, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMinimizeAllPerOutputEquivalence(t *testing.T) {
	r := xrand.New(5150)
	for trial := 0; trial < 10; trial++ {
		a, h := newAlloc()
		src := GenerateMultiPLA(5, 3, 10, r.Uint64())
		m, err := ParseMultiPLA(a, src)
		if err != nil {
			t.Fatal(err)
		}
		// Keep heap-independent oracle copies as cube strings.
		type oracle struct{ on, dc []string }
		oracles := make([]oracle, m.NumOutputs)
		for o, p := range m.Funcs {
			oracles[o] = oracle{coverStrings(h, p.On), coverStrings(h, p.DC)}
		}
		covers := m.MinimizeAll(a)
		for o, cover := range covers {
			for x := uint64(0); x < 1<<5; x++ {
				inOn := stringCoverEval(oracles[o].on, x)
				inDC := stringCoverEval(oracles[o].dc, x)
				inMin := coverEval(h, cover, x)
				if inOn && !inDC && !inMin {
					t.Fatalf("trial %d output %d: care minterm %b lost", trial, o, x)
				}
				if !inOn && !inDC && inMin {
					t.Fatalf("trial %d output %d: off minterm %b gained", trial, o, x)
				}
			}
			freeCover(h, cover)
		}
		m.Free(h)
		if h.NumObjects() != 0 {
			t.Fatalf("trial %d: leaked %d objects", trial, h.NumObjects())
		}
	}
}

// coverStrings snapshots a cover as cube strings so it can be
// evaluated after the heap copies are consumed by minimization.
func coverStrings(h *mheap.Heap, cover []mheap.Ref) []string {
	out := make([]string, len(cover))
	for i, c := range cover {
		out[i] = cubeString(h, c)
	}
	return out
}

func stringCoverEval(cover []string, x uint64) bool {
	for _, s := range cover {
		match := true
		for i := 0; i < len(s); i++ {
			bit := byte('0' + (x>>uint(i))&1)
			if s[i] != '-' && s[i] != bit {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestFormatMultiPLARoundTrip(t *testing.T) {
	a, h := newAlloc()
	src := GenerateMultiPLA(4, 2, 8, 42)
	m, err := ParseMultiPLA(a, src)
	if err != nil {
		t.Fatal(err)
	}
	covers := make([][]mheap.Ref, m.NumOutputs)
	for o, p := range m.Funcs {
		covers[o] = copyCover(a, p.On)
	}
	text := FormatMultiPLA(h, 4, covers)
	if !strings.Contains(text, ".o 2") {
		t.Fatalf("bad format:\n%s", text)
	}
	m2, err := ParseMultiPLA(a, text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for o := range covers {
		if len(m2.Funcs[o].On) != len(covers[o]) {
			t.Fatalf("output %d: %d cubes after round trip, want %d",
				o, len(m2.Funcs[o].On), len(covers[o]))
		}
	}
	m2.Free(h)
	m.Free(h)
	for _, c := range covers {
		freeCover(h, c)
	}
	if h.NumObjects() != 0 {
		t.Fatalf("leaked %d", h.NumObjects())
	}
}

func TestRunMultiBatch(t *testing.T) {
	plas := []string{
		GenerateMultiPLA(7, 3, 14, 1),
		GenerateMultiPLA(8, 2, 16, 2),
	}
	res, err := RunMultiBatch(plas, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.CubesOut > res.CubesIn {
		t.Fatalf("grew: %d -> %d", res.CubesIn, res.CubesOut)
	}
	if err := trace.Validate(res.Events); err != nil {
		t.Fatal(err)
	}
	s, _ := trace.Measure(res.Events)
	if s.Allocs != s.Frees {
		t.Fatalf("leaked %d objects in batch", s.Allocs-s.Frees)
	}
}

func TestGenerateMultiPLAEveryCubeAssertsSomething(t *testing.T) {
	src := GenerateMultiPLA(5, 3, 30, 9)
	for _, line := range strings.Split(src, "\n") {
		f := strings.Fields(line)
		if len(f) != 2 || strings.HasPrefix(f[0], ".") {
			continue
		}
		if !strings.ContainsAny(f[1], "1-") {
			t.Fatalf("cube %q asserts no output", line)
		}
	}
}
