package logicmin

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// FuzzParsePLA: arbitrary PLA text must parse or error, never panic or
// leak heap objects on the error path.
func FuzzParsePLA(f *testing.F) {
	f.Add(".i 3\n.o 1\n01- 1\n1-1 -\n.e\n")
	f.Add(".i 2\n.o 1\n00 0\n")
	f.Add("# junk\n.i 24\n.o 1\n")
	f.Add(".i 3\n01- 1")
	f.Add(".p 5\n.i 1\n.o 1\n1 1")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		h := mheap.New()
		a := mlib.Raw{H: h}
		p, err := ParsePLA(a, src)
		if err == nil && p != nil {
			p.Free(h)
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("heap corrupted by %q: %v", src, err)
		}
	})
}
