package logicmin

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestTautologyBruteForce(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 300; trial++ {
		a, h := newAlloc()
		nvars := 2 + r.Intn(4)
		var cover []mheap.Ref
		for i := 0; i < 1+r.Intn(6); i++ {
			c := newCube(a, nvars)
			d := h.Data(c)
			for j := range d {
				d[j] = byte(r.Intn(3))
			}
			cover = append(cover, c)
		}
		want := true
		for x := uint64(0); x < 1<<uint(nvars); x++ {
			if !coverEval(h, cover, x) {
				want = false
				break
			}
		}
		if got := isTautology(a, cover, nvars); got != want {
			strs := make([]string, len(cover))
			for i, c := range cover {
				strs[i] = cubeString(h, c)
			}
			t.Fatalf("trial %d: isTautology=%v want %v for %v", trial, got, want, strs)
		}
	}
}
