// Package cfrac is the Cfrac stand-in: it factors integers with the
// continued-fraction method (Morrison–Brillhart), using the
// multiple-precision naturals of internal/apps/mlib, whose limbs live
// on the simulated heap. Like the C original — a classic allocation
// benchmark — almost every intermediate is a short-lived heap object:
// convergent numerators, products, residues, exponent vectors and
// Gaussian-elimination rows, nearly all dead moments after creation.
//
// Method sketch: expand sqrt(kN) as a continued fraction; the
// recurrence yields residues Q_i < 2·sqrt(kN) with
// A_{i-1}^2 ≡ (-1)^i · Q_i (mod N). Q_i values that factor completely
// over a small prime base give relations; a GF(2) dependency among
// relation exponent vectors yields X^2 ≡ Y^2 (mod N) and
// gcd(X−Y, N) is then a factor with good probability.
package cfrac

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// primesUpTo returns the primes below n (Go-side static table, like
// the C program's).
func primesUpTo(n int) []uint64 {
	sieve := make([]bool, n)
	var primes []uint64
	for p := 2; p < n; p++ {
		if sieve[p] {
			continue
		}
		primes = append(primes, uint64(p))
		for q := p * p; q < n; q += p {
			sieve[q] = true
		}
	}
	return primes
}

// legendre computes the Legendre symbol (a|p) for odd prime p via
// Euler's criterion with uint64 modular exponentiation.
func legendre(a, p uint64) int {
	a %= p
	if a == 0 {
		return 0
	}
	r := powMod(a, (p-1)/2, p)
	if r == 1 {
		return 1
	}
	return -1
}

func mulMod64(a, b, m uint64) uint64 {
	// Schoolbook 128-bit via splitting; m < 2^63 in our use.
	var res uint64
	a %= m
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % m
		}
		a = (a + a) % m
		b >>= 1
	}
	return res
}

func powMod(a, e, m uint64) uint64 {
	var res uint64 = 1 % m
	a %= m
	for e > 0 {
		if e&1 == 1 {
			res = mulMod64(res, a, m)
		}
		a = mulMod64(a, a, m)
		e >>= 1
	}
	return res
}

// relation is one smooth residue: exponent vector (heap bytes, index 0
// is the sign), the GF(2) row (heap bitset), and A = A_{i-1} mod N
// (heap bignat).
type relation struct {
	exps mheap.Ref // one byte per factor-base entry
	row  mheap.Ref // bitset, ceil(fb/8) bytes
	a    mheap.Ref // bignat
}

func (r *relation) free(h *mheap.Heap) {
	h.Free(r.exps)
	h.Free(r.row)
	h.Free(r.a)
}

// Config tunes the factorizer.
type Config struct {
	// FactorBase is the number of primes kept in the base (default 64).
	FactorBase int
	// MaxIterations bounds continued-fraction steps per multiplier
	// (default 400000).
	MaxIterations int
	// Multipliers to try in order (default 1,3,5,7,11,13).
	Multipliers []uint64
}

func (c Config) withDefaults() Config {
	if c.FactorBase == 0 {
		c.FactorBase = 64
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 400000
	}
	if c.Multipliers == nil {
		c.Multipliers = []uint64{1, 3, 5, 7, 11, 13}
	}
	return c
}

// Factor factors the decimal number n into two non-trivial factors.
// It records all heap traffic on a fresh heap and returns the trace.
// n must be an odd composite that is not a perfect power of a base
// prime (trial division catches small factors first).
func Factor(n string, cfg Config) (f1, f2 string, events []trace.Event, err error) {
	cfg = cfg.withDefaults()
	h := mheap.New()
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	a := mlib.Raw{H: h}

	N, err := mlib.NatFromDecimal(a, n)
	if err != nil {
		return "", "", events, err
	}
	one := mlib.NatFromUint64(a, 1)
	if mlib.NatCmp(h, N, one) <= 0 {
		return "", "", events, fmt.Errorf("cfrac: %s has no non-trivial factorization", n)
	}

	// Trial division by small primes first, like the original.
	for _, p := range primesUpTo(1000) {
		pn := mlib.NatFromUint64(a, p)
		if mlib.NatCmp(h, pn, N) >= 0 {
			h.Free(pn)
			break
		}
		rem := mlib.NatMod(a, N, pn)
		isZero := mlib.NatIsZero(h, rem)
		h.Free(rem)
		h.Free(pn)
		if isZero {
			q := natDivSmall(a, N, p)
			f1 = fmt.Sprintf("%d", p)
			f2 = mlib.NatToDecimal(h, q)
			return f1, f2, events, nil
		}
	}

	for _, k := range cfg.Multipliers {
		f1, f2, err = factorWithMultiplier(a, N, k, cfg)
		if err == nil {
			return f1, f2, events, nil
		}
	}
	return "", "", events, fmt.Errorf("cfrac: gave up on %s: %v", n, err)
}

// natDivSmall divides a bignat by a small prime known to divide it.
func natDivSmall(a mlib.Allocator, x mheap.Ref, p uint64) mheap.Ref {
	h := a.Heap()
	// Repeated subtraction would be absurd; do it in decimal string
	// space via the limbs: reuse NatToDecimal + schoolbook division.
	s := mlib.NatToDecimal(h, x)
	var quotient []byte
	var rem uint64
	for i := 0; i < len(s); i++ {
		cur := rem*10 + uint64(s[i]-'0')
		quotient = append(quotient, byte('0'+cur/p))
		rem = cur % p
	}
	// Trim leading zeros.
	q := string(quotient)
	for len(q) > 1 && q[0] == '0' {
		q = q[1:]
	}
	out, err := mlib.NatFromDecimal(a, q)
	if err != nil {
		panic("cfrac: internal division error")
	}
	return out
}

func factorWithMultiplier(a mlib.Allocator, N mheap.Ref, k uint64, cfg Config) (string, string, error) {
	h := a.Heap()

	kBig := mlib.NatFromUint64(a, k)
	kN := mlib.NatMul(a, N, kBig)
	h.Free(kBig)
	defer h.Free(kN)

	gBig := mlib.NatSqrt(a, kN)
	g, ok := mlib.NatToUint64(h, gBig)
	if !ok || g >= 1<<44 {
		h.Free(gBig)
		return "", "", fmt.Errorf("cfrac: number too large for this implementation (sqrt(kN) must fit in 44 bits)")
	}
	// Exact square: immediate factor.
	gSq := mlib.NatMul(a, gBig, gBig)
	if mlib.NatCmp(h, gSq, kN) == 0 && k == 1 {
		h.Free(gSq)
		f := mlib.NatToDecimal(h, gBig)
		h.Free(gBig)
		return f, f, nil
	}

	// Factor base: -1 and primes with (kN|p) != -1.
	kNmodSmall := func(p uint64) uint64 {
		pn := mlib.NatFromUint64(a, p)
		r := mlib.NatMod(a, kN, pn)
		v, _ := mlib.NatToUint64(h, r)
		h.Free(pn)
		h.Free(r)
		return v
	}
	var fb []uint64 // fb[0] is the formal -1; primes follow
	fb = append(fb, 0)
	for _, p := range primesUpTo(100000) {
		if len(fb) >= cfg.FactorBase {
			break
		}
		if p == 2 || legendre(kNmodSmall(p), p) != -1 {
			fb = append(fb, p)
		}
	}
	fbSize := len(fb)
	rowBytes := (fbSize + 7) / 8

	// Continued-fraction state.
	qPrev := uint64(1) // Q_0
	qkn := mlib.NatSub(a, kN, gSq)
	h.Free(gSq)
	qCur64, ok := mlib.NatToUint64(h, qkn)
	h.Free(qkn)
	if !ok || qCur64 == 0 {
		h.Free(gBig)
		return "", "", fmt.Errorf("cfrac: degenerate expansion")
	}
	qCur := qCur64                    // Q_1
	p := g                            // P_1
	aPrev := mlib.NatFromUint64(a, 1) // A_0... A_{-1} = 1
	aCur := mlib.NatMod(a, gBig, N)
	h.Free(gBig)

	var rels []relation
	freeRels := func() {
		for i := range rels {
			rels[i].free(h)
		}
		rels = nil
	}
	defer func() {
		freeRels()
		h.Free(aPrev)
		h.Free(aCur)
	}()

	target := fbSize + 8
	sign := 1 // (-1)^i for the current Q (i = 1 → odd → sign bit set)

	for iter := 0; iter < cfg.MaxIterations && len(rels) < target; iter++ {
		// Smoothness test on qCur over the factor base.
		exps := make([]byte, fbSize)
		if sign == 1 {
			exps[0] = 1
		}
		rem := qCur
		for j := 1; j < fbSize && rem > 1; j++ {
			for rem%fb[j] == 0 {
				rem /= fb[j]
				exps[j]++
			}
		}
		if rem == 1 && qCur > 1 {
			// Smooth: record the relation on the heap. The congruence
			// is A_{i-1}^2 ≡ (-1)^i Q_i (mod N); with qCur = Q_i the
			// matching numerator is aCur = A_{i-1}.
			r := relation{
				exps: a.Alloc(0, fbSize),
				row:  a.Alloc(0, rowBytes),
				a:    mlib.NatMod(a, aCur, N),
			}
			copy(h.Data(r.exps), exps)
			rowD := h.Data(r.row)
			for j, e := range exps {
				if e&1 == 1 {
					rowD[j/8] |= 1 << uint(j%8)
				}
			}
			rels = append(rels, r)
		}
		h.Tick(200)

		// Advance the recurrence.
		ai := (g + p) / qCur
		pNext := ai*qCur - p
		qNext := int64(qPrev) + int64(ai)*(int64(p)-int64(pNext))
		if qNext <= 0 {
			return "", "", fmt.Errorf("cfrac: recurrence broke down (period hit)")
		}
		// A_{i+1} = a_i*A_i + A_{i-1} (mod N)
		aiBig := mlib.NatFromUint64(a, ai)
		prod := mlib.NatMul(a, aiBig, aCur)
		sum := mlib.NatAdd(a, prod, aPrev)
		aNext := mlib.NatMod(a, sum, N)
		h.Free(aiBig)
		h.Free(prod)
		h.Free(sum)
		h.Free(aPrev)
		aPrev = aCur
		aCur = aNext

		qPrev, qCur, p = qCur, uint64(qNext), pNext
		sign = -sign
	}
	if len(rels) < target {
		return "", "", fmt.Errorf("cfrac: only %d/%d relations after %d iterations (k=%d)", len(rels), target, cfg.MaxIterations, k)
	}

	return solve(a, N, fb, rels)
}

// solve runs GF(2) elimination over the relation rows, and for each
// dependency assembles X and Y and tests gcd(X-Y, N).
func solve(a mlib.Allocator, N mheap.Ref, fb []uint64, rels []relation) (string, string, error) {
	h := a.Heap()
	fbSize := len(fb)
	rowBytes := (fbSize + 7) / 8
	nRels := len(rels)
	histBytes := (nRels + 7) / 8

	// Working copies of the rows plus combination history.
	rows := make([]mheap.Ref, nRels)
	hist := make([]mheap.Ref, nRels)
	for i, r := range rels {
		rows[i] = a.Alloc(0, rowBytes)
		copy(h.Data(rows[i]), h.Data(r.row))
		hist[i] = a.Alloc(0, histBytes)
		h.Data(hist[i])[i/8] |= 1 << uint(i%8)
	}
	defer func() {
		for i := range rows {
			h.Free(rows[i])
			h.Free(hist[i])
		}
	}()

	pivotOf := make([]int, fbSize) // bit -> row index, -1 none
	for i := range pivotOf {
		pivotOf[i] = -1
	}
	firstBit := func(row mheap.Ref) int {
		d := h.Data(row)
		for j := 0; j < fbSize; j++ {
			if d[j/8]&(1<<uint(j%8)) != 0 {
				return j
			}
		}
		return -1
	}
	xorInto := func(dst, src mheap.Ref) {
		dd, ds := h.Data(dst), h.Data(src)
		for i := range ds {
			dd[i] ^= ds[i]
		}
	}

	var lastErr error
	for i := 0; i < nRels; i++ {
		// Reduce row i against existing pivots.
		for {
			b := firstBit(rows[i])
			if b < 0 {
				// Dependency: combine the original relations in
				// hist[i] and try to split N.
				if f1, f2, ok := tryDependency(a, N, fb, rels, h.Data(hist[i])); ok {
					return f1, f2, nil
				}
				lastErr = fmt.Errorf("cfrac: dependency gave trivial factors")
				break
			}
			if pivotOf[b] < 0 {
				pivotOf[b] = i
				break
			}
			xorInto(rows[i], rows[pivotOf[b]])
			xorInto(hist[i], hist[pivotOf[b]])
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cfrac: no dependency found")
	}
	return "", "", lastErr
}

// tryDependency builds X = Π A_j and Y = Π p^(e_p/2) over the combined
// relations and tests gcd(X−Y, N) and gcd(X+Y, N).
func tryDependency(a mlib.Allocator, N mheap.Ref, fb []uint64, rels []relation, mask []byte) (string, string, bool) {
	h := a.Heap()
	fbSize := len(fb)

	x := mlib.NatFromUint64(a, 1)
	expSum := make([]int, fbSize)
	for j := range rels {
		if mask[j/8]&(1<<uint(j%8)) == 0 {
			continue
		}
		nx := mlib.NatMulMod(a, x, rels[j].a, N)
		h.Free(x)
		x = nx
		d := h.Data(rels[j].exps)
		for e := 0; e < fbSize; e++ {
			expSum[e] += int(d[e])
		}
	}
	y := mlib.NatFromUint64(a, 1)
	for e := 1; e < fbSize; e++ { // skip the -1 slot: its exponent is even by construction
		half := expSum[e] / 2
		if expSum[e]%2 != 0 {
			// Should not happen for a true dependency.
			h.Free(x)
			h.Free(y)
			return "", "", false
		}
		pb := mlib.NatFromUint64(a, fb[e])
		for t := 0; t < half; t++ {
			ny := mlib.NatMulMod(a, y, pb, N)
			h.Free(y)
			y = ny
		}
		h.Free(pb)
	}

	try := func(diff mheap.Ref) (string, string, bool) {
		g := mlib.NatGCD(a, diff, N)
		defer h.Free(g)
		one := mlib.NatFromUint64(a, 1)
		defer h.Free(one)
		if mlib.NatIsZero(h, g) || mlib.NatCmp(h, g, one) == 0 || mlib.NatCmp(h, g, N) == 0 {
			return "", "", false
		}
		f1 := mlib.NatToDecimal(h, g)
		q := natDivBig(a, N, g)
		f2 := mlib.NatToDecimal(h, q)
		h.Free(q)
		return f1, f2, true
	}

	// X - Y mod N (order the operands first).
	var diff mheap.Ref
	if mlib.NatCmp(h, x, y) >= 0 {
		diff = mlib.NatSub(a, x, y)
	} else {
		diff = mlib.NatSub(a, y, x)
	}
	f1, f2, ok := try(diff)
	h.Free(diff)
	if !ok {
		sum := mlib.NatAdd(a, x, y)
		f1, f2, ok = try(sum)
		h.Free(sum)
	}
	h.Free(x)
	h.Free(y)
	return f1, f2, ok
}

// natDivBig computes x / d for d | x by binary long division (quotient
// reconstruction via shift-and-subtract).
func natDivBig(a mlib.Allocator, x, d mheap.Ref) mheap.Ref {
	h := a.Heap()
	// Simple O(bits) schoolbook: q = 0; r = 0; scan bits of x MSB→LSB.
	// Reuse decimal-space division for clarity: divide decimal strings.
	xs := mlib.NatToDecimal(h, x)
	ds := mlib.NatToDecimal(h, d)
	// Long division in decimal with bignat remainder comparisons would
	// be slow; instead use repeated subtraction on scaled divisors.
	q := mlib.NatFromUint64(a, 0)
	rem, _ := mlib.NatFromDecimal(a, xs)
	dBig, _ := mlib.NatFromDecimal(a, ds)
	// Scale table: d * 10^k
	type scaled struct {
		val mheap.Ref
		pow mheap.Ref
	}
	var scales []scaled
	cur := dBig
	pow := mlib.NatFromUint64(a, 1)
	ten := mlib.NatFromUint64(a, 10)
	for mlib.NatCmp(h, cur, rem) <= 0 {
		scales = append(scales, scaled{cur, pow})
		cur = mlib.NatMul(a, cur, ten)
		pow = mlib.NatMul(a, pow, ten)
	}
	h.Free(cur)
	h.Free(pow)
	for i := len(scales) - 1; i >= 0; i-- {
		for mlib.NatCmp(h, scales[i].val, rem) <= 0 {
			nr := mlib.NatSub(a, rem, scales[i].val)
			h.Free(rem)
			rem = nr
			nq := mlib.NatAdd(a, q, scales[i].pow)
			h.Free(q)
			q = nq
		}
		h.Free(scales[i].val)
		h.Free(scales[i].pow)
	}
	h.Free(rem)
	h.Free(ten)
	return q
}
