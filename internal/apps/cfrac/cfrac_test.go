package cfrac

import (
	"strconv"
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestPrimesUpTo(t *testing.T) {
	ps := primesUpTo(30)
	want := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(ps) != len(want) {
		t.Fatalf("primes: %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("primes[%d] = %d", i, ps[i])
		}
	}
}

func TestLegendre(t *testing.T) {
	// Quadratic residues mod 7: 1, 2, 4.
	for a, want := range map[uint64]int{1: 1, 2: 1, 3: -1, 4: 1, 5: -1, 6: -1, 7: 0, 8: 1} {
		if got := legendre(a, 7); got != want {
			t.Errorf("legendre(%d, 7) = %d, want %d", a, got, want)
		}
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct{ a, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{7, 5, 13, 11},
		{1234567891, 2, 1000000007, 819082819},
	}
	for _, c := range cases {
		if got := powMod(c.a, c.e, c.m); got != c.want {
			t.Errorf("powMod(%d,%d,%d) = %d, want %d", c.a, c.e, c.m, got, c.want)
		}
	}
}

func TestMulMod64(t *testing.T) {
	// Values that would overflow naive 64-bit multiply.
	a, b, m := uint64(1)<<62, uint64(1)<<62, uint64(1_000_000_007)
	// (2^62 mod m)^2 mod m computed independently via powMod.
	want := powMod(1<<62, 2, m)
	if got := mulMod64(a, b, m); got != want {
		t.Fatalf("mulMod64 = %d, want %d", got, want)
	}
}

func checkFactors(t *testing.T, n, f1, f2 string) {
	t.Helper()
	h := mheap.New()
	a := mlib.Raw{H: h}
	nn, err := mlib.NatFromDecimal(a, n)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := mlib.NatFromDecimal(a, f1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := mlib.NatFromDecimal(a, f2)
	if err != nil {
		t.Fatal(err)
	}
	prod := mlib.NatMul(a, x1, x2)
	if mlib.NatCmp(h, prod, nn) != 0 {
		t.Fatalf("%s * %s != %s", f1, f2, n)
	}
	one := mlib.NatFromUint64(a, 1)
	if mlib.NatCmp(h, x1, one) == 0 || mlib.NatCmp(h, x2, one) == 0 {
		t.Fatalf("trivial factorization %s = %s * %s", n, f1, f2)
	}
}

func TestFactorSmallByTrialDivision(t *testing.T) {
	cases := []string{"15", "21", "1000003393", "262144"} // incl. 2^18
	for _, n := range cases {
		f1, f2, _, err := Factor(n, Config{})
		if err != nil {
			t.Fatalf("Factor(%s): %v", n, err)
		}
		checkFactors(t, n, f1, f2)
	}
}

func TestFactorRejectsTrivial(t *testing.T) {
	for _, n := range []string{"0", "1"} {
		if _, _, _, err := Factor(n, Config{}); err == nil {
			t.Errorf("Factor(%s) succeeded", n)
		}
	}
	if _, _, _, err := Factor("12x", Config{}); err == nil {
		t.Error("non-decimal accepted")
	}
}

func TestFactorSemiprimesCFRAC(t *testing.T) {
	// Semiprimes whose factors exceed the trial-division bound, so the
	// continued-fraction machinery must do the work.
	cases := []struct{ p, q uint64 }{
		{10007, 10009},
		{104729, 104723},
		{1000003, 1000033},
		{15485863, 15485867}, // ~2.4e14
	}
	for _, c := range cases {
		n := strconv.FormatUint(c.p*c.q, 10)
		f1, f2, events, err := Factor(n, Config{})
		if err != nil {
			t.Fatalf("Factor(%s = %d*%d): %v", n, c.p, c.q, err)
		}
		checkFactors(t, n, f1, f2)
		// The returned factors are exactly {p, q}.
		got := map[string]bool{f1: true, f2: true}
		if !got[strconv.FormatUint(c.p, 10)] || !got[strconv.FormatUint(c.q, 10)] {
			t.Fatalf("Factor(%s) = %s, %s; want %d, %d", n, f1, f2, c.p, c.q)
		}
		if err := trace.Validate(events); err != nil {
			t.Fatalf("trace invalid: %v", err)
		}
	}
}

func TestFactorLargeSemiprime(t *testing.T) {
	if testing.Short() {
		t.Skip("large factorization is slow")
	}
	// 18-digit semiprime: 1000000007 * 998244353.
	n := "998244359987710471"
	f1, f2, events, err := Factor(n, Config{FactorBase: 96})
	if err != nil {
		t.Fatal(err)
	}
	checkFactors(t, n, f1, f2)
	got := map[string]bool{f1: true, f2: true}
	if !got["1000000007"] || !got["998244353"] {
		t.Fatalf("factors %s, %s", f1, f2)
	}
	s, err := trace.Measure(events)
	if err != nil {
		t.Fatal(err)
	}
	// CFRAC churn: lots of allocation, little stays live (the
	// collected relations are the only persistent storage).
	if s.Allocs < 5000 {
		t.Fatalf("only %d allocations", s.Allocs)
	}
	if s.MaxLive*8 > s.TotalBytes {
		t.Fatalf("max live %d too high vs total %d; cfrac should churn", s.MaxLive, s.TotalBytes)
	}
}

func TestFactorTraceWellFormedAndChurny(t *testing.T) {
	n := strconv.FormatUint(1000003*1000033, 10)
	_, _, events, err := Factor(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	s, _ := trace.Measure(events)
	if s.Frees < s.Allocs*8/10 {
		t.Fatalf("only %d/%d freed; cfrac must free its temporaries", s.Frees, s.Allocs)
	}
}

func TestFactorDeterministic(t *testing.T) {
	n := strconv.FormatUint(10007*10009, 10)
	f1a, f2a, ev1, err := Factor(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f1b, f2b, ev2, err := Factor(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f1a != f1b || f2a != f2b || len(ev1) != len(ev2) {
		t.Fatal("factorization not deterministic")
	}
}

func TestNatDivSmall(t *testing.T) {
	h := mheap.New()
	a := mlib.Raw{H: h}
	x, _ := mlib.NatFromDecimal(a, "1000000000000000000000")
	q := natDivSmall(a, x, 5)
	if got := mlib.NatToDecimal(h, q); got != "200000000000000000000" {
		t.Fatalf("div = %s", got)
	}
}

func TestNatDivBig(t *testing.T) {
	h := mheap.New()
	a := mlib.Raw{H: h}
	x, _ := mlib.NatFromDecimal(a, "999999999999999999998000000000000000000001")
	d, _ := mlib.NatFromDecimal(a, "999999999999999999999")
	q := natDivBig(a, x, d)
	if got := mlib.NatToDecimal(h, q); got != "999999999999999999999" {
		t.Fatalf("quotient = %s", got)
	}
}

func BenchmarkFactorMedium(b *testing.B) {
	n := strconv.FormatUint(1000003*1000033, 10)
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Factor(n, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
