package gcbench

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func small(p core.Policy) Config {
	return Config{Policy: p, TriggerBytes: 64 * 1024, MaxDepth: 8, LongLivedDepth: 10}
}

func TestRunRequiresPolicy(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing policy accepted")
	}
}

func TestChecksumIdenticalAcrossPolicies(t *testing.T) {
	// The computation's result must not depend on the collector: any
	// divergence means a live object was reclaimed.
	policies := []core.Policy{
		core.Full{},
		core.Fixed{K: 1},
		core.Fixed{K: 4},
		core.DtbFM{TraceMax: 32 * 1024},
		core.DtbMem{MemMax: 512 * 1024},
	}
	var want int64
	for i, p := range policies {
		res := run(t, small(p))
		if i == 0 {
			want = res.Checksum
			continue
		}
		if res.Checksum != want {
			t.Fatalf("%s produced checksum %d, want %d", p.Name(), res.Checksum, want)
		}
	}
}

func TestCollectionsActuallyRan(t *testing.T) {
	res := run(t, small(core.Full{}))
	if res.Collections == 0 {
		t.Fatal("no collections")
	}
	if res.Reclaimed == 0 {
		t.Fatal("nothing reclaimed despite dropped trees")
	}
	if res.TracedBytes == 0 {
		t.Fatal("nothing traced")
	}
}

func TestFullKeepsHeapNearLongLived(t *testing.T) {
	res := run(t, small(core.Full{}))
	// After the run, live data is the long-lived tree (2^11-1 nodes of
	// 48 bytes each with headers) plus stack leftovers; the Full
	// collector's final heap should be within a trigger interval of it.
	longLivedBytes := uint64((1<<11 - 1) * 48)
	if res.FinalBytes > longLivedBytes+64*1024 {
		t.Fatalf("final heap %d bytes; long-lived tree is only %d", res.FinalBytes, longLivedBytes)
	}
}

func TestFixed1LeavesMoreGarbageThanFull(t *testing.T) {
	full := run(t, small(core.Full{}))
	fixed1 := run(t, small(core.Fixed{K: 1}))
	if fixed1.FinalBytes <= full.FinalBytes {
		t.Fatalf("Fixed1 final heap %d not above Full's %d (tenured garbage missing)",
			fixed1.FinalBytes, full.FinalBytes)
	}
	if fixed1.TracedBytes >= full.TracedBytes {
		t.Fatalf("Fixed1 traced %d not below Full's %d", fixed1.TracedBytes, full.TracedBytes)
	}
}

func TestDtbMemRespectsBudgetOnRealCollector(t *testing.T) {
	budget := uint64(700 * 1024)
	res := run(t, Config{
		Policy:       core.DtbMem{MemMax: budget},
		TriggerBytes: 64 * 1024, MaxDepth: 10, LongLivedDepth: 11,
	})
	for _, s := range res.History {
		if s.MemBefore > budget+64*1024 {
			t.Fatalf("scavenge %d saw %d bytes in use, budget %d (+trigger)", s.N, s.MemBefore, budget)
		}
	}
}

func TestFilterRecentSameChecksumSmallerSet(t *testing.T) {
	plain := run(t, small(core.Fixed{K: 1}))
	cfg := small(core.Fixed{K: 1})
	cfg.FilterRecent = true
	filtered := run(t, cfg)
	if plain.Checksum != filtered.Checksum {
		t.Fatal("filter changed program results")
	}
	if filtered.MaxRemember > plain.MaxRemember {
		t.Fatalf("filtered remembered set %d above eager %d", filtered.MaxRemember, plain.MaxRemember)
	}
}

func TestWriteBarrierTrafficRecorded(t *testing.T) {
	// buildTopDown stores forward-in-time pointers: the remembered set
	// must have seen them.
	res := run(t, small(core.Fixed{K: 4}))
	if res.MaxRemember == 0 {
		t.Fatal("no remembered entries despite top-down tree construction")
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, small(core.DtbFM{TraceMax: 32 * 1024}))
	b := run(t, small(core.DtbFM{TraceMax: 32 * 1024}))
	if a.Checksum != b.Checksum || a.Collections != b.Collections || a.TracedBytes != b.TracedBytes {
		t.Fatal("gcbench run not deterministic")
	}
}

func BenchmarkGCBench(b *testing.B) {
	cfg := Config{Policy: core.DtbFM{TraceMax: 32 * 1024}, TriggerBytes: 64 * 1024, MaxDepth: 8, LongLivedDepth: 10}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
