// Package gcbench runs a garbage-collected workload — the classic
// Ellis/Boehm GCBench shape: short-lived complete binary trees built
// top-down and dropped, over a long-lived backbone — directly on the
// reachability-based dynamic-threatening-boundary collector of
// internal/gc. Unlike the malloc/free mini-applications, nothing here
// is freed explicitly: storage dies by becoming unreachable and only
// the collector's boundary policy decides when it is reclaimed.
//
// This is the paper's deployment story made concrete: a program in a
// garbage-collected language, a collector tuned by one constraint.
package gcbench

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/gc"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// Tree nodes: 2 pointer slots (left, right) and an 8-byte value.
const nodeData = 8

// Config sizes the benchmark.
type Config struct {
	// Policy drives the collector (required).
	Policy core.Policy
	// TriggerBytes is the scavenge trigger; default 256 KB.
	TriggerBytes uint64
	// MaxDepth bounds the transient tree sizes (default 10: trees of
	// up to 2^11-1 nodes).
	MaxDepth int
	// LongLivedDepth sizes the permanent tree (default 12).
	LongLivedDepth int
	// FilterRecent enables the remembered-set write-barrier filter.
	FilterRecent bool
}

func (c Config) withDefaults() Config {
	if c.TriggerBytes == 0 {
		c.TriggerBytes = 256 * 1024
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.LongLivedDepth == 0 {
		c.LongLivedDepth = 12
	}
	return c
}

// Result reports the run.
type Result struct {
	Checksum    int64 // deterministic function of all tree walks
	Collections int
	TracedBytes uint64
	Reclaimed   uint64
	FinalBytes  uint64 // heap bytes in use at the end
	MaxRemember int    // peak remembered-set size
	History     []core.Scavenge
}

// bench carries the run state.
type bench struct {
	c   *gc.Collector
	h   *mheap.Heap
	sum int64
	rem int
}

func (b *bench) note() {
	if s := b.c.RememberedSize(); s > b.rem {
		b.rem = s
	}
}

// newNode allocates a tree node with rooted children (GC discipline:
// every live temporary is rooted across allocation).
func (b *bench) newNode(left, right mheap.Ref, v int64) mheap.Ref {
	b.c.PushRoot(left)
	b.c.PushRoot(right)
	n := b.c.Alloc(2, nodeData)
	b.c.PopRoot()
	b.c.PopRoot()
	if left != mheap.Nil {
		b.h.SetPtr(n, 0, left)
	}
	if right != mheap.Nil {
		b.h.SetPtr(n, 1, right)
	}
	d := b.h.Data(n)
	for i := 0; i < 8; i++ {
		d[i] = byte(v >> uint(8*i))
	}
	b.note()
	return n
}

// buildBottomUp constructs a complete tree of the given depth.
func (b *bench) buildBottomUp(depth int, v int64) mheap.Ref {
	if depth == 0 {
		return b.newNode(mheap.Nil, mheap.Nil, v)
	}
	left := b.buildBottomUp(depth-1, 2*v)
	b.c.PushRoot(left)
	right := b.buildBottomUp(depth-1, 2*v+1)
	b.c.PushRoot(right)
	n := b.newNode(left, right, v)
	b.c.PopRoot()
	b.c.PopRoot()
	return n
}

// buildTopDown allocates the root first and fills children in with
// pointer stores — the GCBench variant that exercises the write
// barrier with forward-in-time pointers.
func (b *bench) buildTopDown(node mheap.Ref, depth int, v int64) {
	if depth == 0 {
		return
	}
	b.c.PushRoot(node)
	left := b.newNode(mheap.Nil, mheap.Nil, 2*v)
	b.h.SetPtr(node, 0, left) // forward-in-time store
	right := b.newNode(mheap.Nil, mheap.Nil, 2*v+1)
	b.h.SetPtr(node, 1, right)
	b.c.PopRoot()
	b.buildTopDown(b.h.Ptr(node, 0), depth-1, 2*v)
	b.buildTopDown(b.h.Ptr(node, 1), depth-1, 2*v+1)
	b.note()
}

// walk checksums a tree.
func (b *bench) walk(n mheap.Ref) int64 {
	if n == mheap.Nil {
		return 0
	}
	d := b.h.Data(n)
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(d[i]) << uint(8*i)
	}
	return v + b.walk(b.h.Ptr(n, 0)) - b.walk(b.h.Ptr(n, 1))
}

// Run executes the benchmark under the configured collector.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Policy == nil {
		return nil, fmt.Errorf("gcbench: Config.Policy is required")
	}
	h := mheap.New()
	c, err := gc.New(h, gc.Options{
		Policy:       cfg.Policy,
		TriggerBytes: cfg.TriggerBytes,
		AutoCollect:  true,
		FilterRecent: cfg.FilterRecent,
	})
	if err != nil {
		return nil, err
	}
	b := &bench{c: c, h: h}

	// Long-lived backbone, kept for the whole run.
	longLived := b.buildBottomUp(cfg.LongLivedDepth, 1)
	c.SetGlobal("longLived", longLived)
	b.sum += b.walk(longLived)

	// Transient trees of increasing depth, built both ways, walked,
	// then dropped (become garbage the collector must find).
	for depth := 4; depth <= cfg.MaxDepth; depth += 2 {
		iters := 1 << uint(cfg.MaxDepth-depth+2)
		for i := 0; i < iters; i++ {
			t1 := b.buildBottomUp(depth, int64(i))
			c.SetGlobal("tmp", t1)
			b.sum += b.walk(t1)

			t2 := b.newNode(mheap.Nil, mheap.Nil, int64(i))
			c.SetGlobal("tmp", t2) // t1 is garbage now
			b.buildTopDown(t2, depth, int64(i))
			b.sum += b.walk(t2)
			c.SetGlobal("tmp", mheap.Nil) // t2 too
		}
	}

	// The backbone must have survived every collection intact.
	b.sum += b.walk(longLived)

	res := &Result{
		Checksum:    b.sum,
		Collections: c.Collections(),
		TracedBytes: c.TracedBytes(),
		Reclaimed:   c.ReclaimedBytes(),
		FinalBytes:  h.BytesInUse(),
		MaxRemember: b.rem,
		History:     c.History().Scavenges,
	}
	if err := h.CheckIntegrity(); err != nil {
		return res, fmt.Errorf("gcbench: heap corrupted: %w", err)
	}
	if err := c.CheckRememberedInvariant(); err != nil {
		return res, fmt.Errorf("gcbench: %w", err)
	}
	return res, nil
}
