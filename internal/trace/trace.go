// Package trace defines the allocation-event model that drives the
// garbage-collection simulations, mirroring the paper's methodology:
// "We used memory allocation and deallocation events in these programs
// to drive a simulation of the different garbage collection
// algorithms." (Barrett & Zorn, §5.)
//
// A trace is an ordered stream of events. Alloc and Free events carry
// the liveness oracle the simulator relies on; PtrWrite events carry
// the pointer stores the reachability-based collector in internal/gc
// needs to maintain its remembered set. Every event is stamped with an
// instruction count so the machine model (10 MIPS in the paper) can
// convert simulated work into seconds.
package trace

import (
	"fmt"
	"sort"
)

// ObjectID identifies one heap object within a trace. IDs are assigned
// by the producer and must be unique across the whole trace (an ID is
// never reused after its object is freed).
type ObjectID uint64

// NilObject is the zero ObjectID; it never names a real object and is
// used for null pointer stores.
const NilObject ObjectID = 0

// Kind discriminates trace events.
type Kind uint8

const (
	// KindAlloc records the creation of an object: ID, Size and the
	// instruction timestamp are meaningful.
	KindAlloc Kind = iota + 1
	// KindFree records the death of an object (the point where the
	// original program called free). ID and Instr are meaningful.
	KindFree
	// KindPtrWrite records a pointer store: the field of object ID
	// numbered Field now points at Target (NilObject for a null
	// store). Used by the reachability collector's write barrier.
	KindPtrWrite
	// KindMark is an annotation event (phase boundaries, program
	// milestones); Label is meaningful. Simulators ignore marks.
	KindMark
)

// String returns the single-letter mnemonic used by the text codec.
func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "a"
	case KindFree:
		return "f"
	case KindPtrWrite:
		return "p"
	case KindMark:
		return "m"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one record of a trace.
type Event struct {
	Kind   Kind
	ID     ObjectID // object allocated/freed, or pointer-store source
	Size   uint64   // alloc: object size in bytes
	Field  uint32   // ptr write: field index within the source object
	Target ObjectID // ptr write: new referent (NilObject = null)
	Instr  uint64   // instruction timestamp, non-decreasing
	Label  string   // mark: annotation text
}

// Alloc constructs an allocation event.
func Alloc(id ObjectID, size, instr uint64) Event {
	return Event{Kind: KindAlloc, ID: id, Size: size, Instr: instr}
}

// Free constructs a deallocation event.
func Free(id ObjectID, instr uint64) Event {
	return Event{Kind: KindFree, ID: id, Instr: instr}
}

// PtrWrite constructs a pointer-store event.
func PtrWrite(src ObjectID, field uint32, dst ObjectID, instr uint64) Event {
	return Event{Kind: KindPtrWrite, ID: src, Field: field, Target: dst, Instr: instr}
}

// Mark constructs an annotation event.
func Mark(label string, instr uint64) Event {
	return Event{Kind: KindMark, Label: label, Instr: instr}
}

// String renders the event in text-codec form.
func (e Event) String() string {
	switch e.Kind {
	case KindAlloc:
		return fmt.Sprintf("a %d %d %d", e.ID, e.Size, e.Instr)
	case KindFree:
		return fmt.Sprintf("f %d %d", e.ID, e.Instr)
	case KindPtrWrite:
		return fmt.Sprintf("p %d %d %d %d", e.ID, e.Field, e.Target, e.Instr)
	case KindMark:
		return fmt.Sprintf("m %q %d", e.Label, e.Instr)
	default:
		return fmt.Sprintf("?(%d)", uint8(e.Kind))
	}
}

// Stats summarizes a trace: volumes, live-byte extrema and event
// counts. It can be accumulated incrementally with Update or computed
// at once with Measure.
type Stats struct {
	Allocs      int
	Frees       int
	PtrWrites   int
	Marks       int
	TotalBytes  uint64 // total bytes allocated over the whole trace
	LiveBytes   uint64 // bytes live right now (after last Update)
	MaxLive     uint64 // maximum of LiveBytes over the trace
	LiveObjects int    // objects live right now
	MaxObjects  int    // maximum simultaneously live objects
	LastInstr   uint64 // timestamp of the final event
	sizes       map[ObjectID]uint64
}

// Update folds one event into the statistics. It returns an error on a
// malformed stream (duplicate allocation, free of an unknown object,
// or a time regression).
func (s *Stats) Update(e Event) error {
	if s.sizes == nil {
		s.sizes = make(map[ObjectID]uint64)
	}
	if e.Instr < s.LastInstr {
		return fmt.Errorf("trace: instruction clock regressed %d -> %d", s.LastInstr, e.Instr)
	}
	s.LastInstr = e.Instr
	switch e.Kind {
	case KindAlloc:
		if e.ID == NilObject {
			return fmt.Errorf("trace: allocation of nil object id")
		}
		if _, dup := s.sizes[e.ID]; dup {
			return fmt.Errorf("trace: duplicate allocation of object %d", e.ID)
		}
		s.sizes[e.ID] = e.Size
		s.Allocs++
		s.TotalBytes += e.Size
		s.LiveBytes += e.Size
		s.LiveObjects++
		if s.LiveBytes > s.MaxLive {
			s.MaxLive = s.LiveBytes
		}
		if s.LiveObjects > s.MaxObjects {
			s.MaxObjects = s.LiveObjects
		}
	case KindFree:
		size, ok := s.sizes[e.ID]
		if !ok {
			return fmt.Errorf("trace: free of unknown or already-freed object %d", e.ID)
		}
		delete(s.sizes, e.ID)
		s.Frees++
		s.LiveBytes -= size
		s.LiveObjects--
	case KindPtrWrite:
		if _, ok := s.sizes[e.ID]; !ok {
			return fmt.Errorf("trace: pointer store into dead or unknown object %d", e.ID)
		}
		if e.Target != NilObject {
			if _, ok := s.sizes[e.Target]; !ok {
				return fmt.Errorf("trace: pointer store to dead or unknown target %d", e.Target)
			}
		}
		s.PtrWrites++
	case KindMark:
		s.Marks++
	default:
		return fmt.Errorf("trace: unknown event kind %d", e.Kind)
	}
	return nil
}

// Measure computes statistics for a complete trace.
func Measure(events []Event) (Stats, error) {
	var s Stats
	for i, e := range events {
		if err := s.Update(e); err != nil {
			return s, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return s, nil
}

// Validate checks a complete trace for well-formedness and returns the
// first problem found, or nil.
func Validate(events []Event) error {
	_, err := Measure(events)
	return err
}

// Builder incrementally constructs a well-formed trace, allocating
// object IDs and enforcing the clock invariant. It is the easy path
// for workload generators and tests.
type Builder struct {
	events []Event
	nextID ObjectID
	instr  uint64
	live   map[ObjectID]bool
}

// NewBuilder returns an empty Builder whose first object will get ID 1.
func NewBuilder() *Builder {
	return &Builder{nextID: 1, live: make(map[ObjectID]bool)}
}

// Advance moves the instruction clock forward by n instructions.
func (b *Builder) Advance(n uint64) { b.instr += n }

// Now returns the current instruction clock.
func (b *Builder) Now() uint64 { return b.instr }

// Alloc appends an allocation of size bytes and returns the new
// object's ID.
func (b *Builder) Alloc(size uint64) ObjectID {
	id := b.nextID
	b.nextID++
	b.live[id] = true
	b.events = append(b.events, Alloc(id, size, b.instr))
	return id
}

// Free appends a deallocation. It panics if the object is not live,
// because that is always a generator bug.
func (b *Builder) Free(id ObjectID) {
	if !b.live[id] {
		panic(fmt.Sprintf("trace: Builder.Free of non-live object %d", id))
	}
	delete(b.live, id)
	b.events = append(b.events, Free(id, b.instr))
}

// PtrWrite appends a pointer store event.
func (b *Builder) PtrWrite(src ObjectID, field uint32, dst ObjectID) {
	b.events = append(b.events, PtrWrite(src, field, dst, b.instr))
}

// Mark appends an annotation event.
func (b *Builder) Mark(label string) {
	b.events = append(b.events, Mark(label, b.instr))
}

// Live reports whether the object is currently live in the builder.
func (b *Builder) Live(id ObjectID) bool { return b.live[id] }

// LiveIDs returns the IDs of all currently live objects in ascending
// ID (= allocation) order, so generators that pick victims from it
// produce identical traces run to run.
func (b *Builder) LiveIDs() []ObjectID {
	ids := make([]ObjectID, 0, len(b.live))
	for id := range b.live { //dtbvet:ignore determinism -- keys are sorted before the slice is returned
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Events returns the trace built so far. The returned slice is owned
// by the Builder until the caller stops using it.
func (b *Builder) Events() []Event { return b.events }
