package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Recovery mode for the binary codec: a RecoveringReader decodes as
// much of a damaged stream as it can instead of stopping at the first
// bad byte, and accounts for every byte it gives up on. Two things are
// non-negotiable:
//
//   - Exact accounting. Every input byte after the header is either
//     part of a decoded record or counted in DropStats.BytesDropped —
//     nothing is skipped silently. Drops are typed: a resync episode
//     past corrupt bytes is a CorruptRecords count, a stream that ends
//     inside a record is a TornTail.
//   - Guaranteed progress. Resync advances at least one byte per
//     failed attempt, so decoding any stream terminates in at most
//     len(stream) attempts — recovery can be slow on garbage, never
//     stuck.
//
// The header stays strict: a stream whose magic is damaged is not a
// trace, and "recovering" it would fabricate data from noise.
//
// Recovery is best effort by nature — resyncing into the middle of a
// record can decode byte salad as a plausible event — but whatever it
// returns is a well-formed trace (monotone clock, known kinds), and
// the drop accounting tells the consumer exactly how much of the
// stream it rests on.

// DropStats counts what recovery discarded. The zero value means the
// stream decoded completely.
type DropStats struct {
	// CorruptRecords counts resync episodes: maximal contiguous byte
	// spans abandoned after a record failed to decode. One corrupted
	// record usually costs one episode; the count is of episodes, not
	// of original records destroyed (which the stream no longer says).
	CorruptRecords int
	// TornTail is 1 when the stream ended partway through a record (a
	// truncated file tail), else 0.
	TornTail int
	// BytesDropped is the total encoded bytes skipped across both
	// kinds. It is exact: header and decoded records account for every
	// other byte of the input.
	BytesDropped uint64
}

// Any reports whether anything was dropped.
func (d DropStats) Any() bool { return d.CorruptRecords > 0 || d.TornTail > 0 }

// Add accumulates another reader's drops (e.g. across a resumed
// replay's reopened streams).
func (d *DropStats) Add(o DropStats) {
	d.CorruptRecords += o.CorruptRecords
	d.TornTail += o.TornTail
	d.BytesDropped += o.BytesDropped
}

// String renders the accounting for logs: "2 corrupt record span(s),
// torn tail, 37 byte(s) dropped".
func (d DropStats) String() string {
	if !d.Any() {
		return "no drops"
	}
	s := ""
	if d.CorruptRecords > 0 {
		s += fmt.Sprintf("%d corrupt record span(s)", d.CorruptRecords)
	}
	if d.TornTail > 0 {
		if s != "" {
			s += ", "
		}
		s += "torn tail"
	}
	return fmt.Sprintf("%s, %d byte(s) dropped", s, d.BytesDropped)
}

// errShortRecord says the buffer ended before the record did; with
// more input it might still decode.
var errShortRecord = errors.New("trace: record extends past available bytes")

// uvarintAt decodes a uvarint from b, distinguishing "need more bytes"
// from "corrupt encoding".
func uvarintAt(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n > 0 {
		return v, n, nil
	}
	if n == 0 {
		if len(b) >= binary.MaxVarintLen64 {
			return 0, 0, fmt.Errorf("trace: varint longer than %d bytes", binary.MaxVarintLen64)
		}
		return 0, 0, errShortRecord
	}
	return 0, 0, errors.New("trace: varint overflows uint64")
}

// decodeRecord decodes one event record from the start of b, given the
// previous record's instruction clock. It returns the event, the
// record's encoded length, and nil; errShortRecord when b is a proper
// prefix of a possibly-valid record; or a descriptive error when the
// bytes cannot begin a record.
func decodeRecord(b []byte, lastInstr uint64) (Event, int, error) {
	if len(b) == 0 {
		return Event{}, 0, errShortRecord
	}
	e := Event{Kind: Kind(b[0])}
	pos := 1
	uv := func() (uint64, error) {
		v, n, err := uvarintAt(b[pos:])
		pos += n
		return v, err
	}
	switch e.Kind {
	case KindAlloc:
		id, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		size, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		e.ID, e.Size = ObjectID(id), size
	case KindFree:
		id, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		e.ID = ObjectID(id)
	case KindPtrWrite:
		id, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		field, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		target, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		e.ID, e.Field, e.Target = ObjectID(id), uint32(field), ObjectID(target)
	case KindMark:
		n, err := uv()
		if err != nil {
			return Event{}, 0, err
		}
		const maxLabel = 1 << 20
		if n > maxLabel {
			return Event{}, 0, fmt.Errorf("trace: mark label length %d exceeds limit", n)
		}
		if uint64(len(b)-pos) < n {
			return Event{}, 0, errShortRecord
		}
		e.Label = string(b[pos : pos+int(n)])
		pos += int(n)
	default:
		return Event{}, 0, fmt.Errorf("trace: unknown event kind byte %d", b[0])
	}
	d, err := uv()
	if err != nil {
		return Event{}, 0, err
	}
	e.Instr = lastInstr + d
	return e, pos, nil
}

// RecoveringReader decodes the binary format with recovery: corrupt
// records are resynced past and a torn tail is absorbed, both counted
// in Drops. Use it where a partial answer over a damaged capture beats
// no answer — and always surface Drops; the strict Reader remains the
// default for data whose integrity matters.
type RecoveringReader struct {
	r         io.Reader
	buf       []byte
	start     int // window start within buf
	end       int // window end within buf
	eof       bool
	readHdr   bool
	lastInstr uint64
	drops     DropStats
	inSkip    bool // mid resync-episode
	events    int
}

// NewRecoveringReader returns a recovery-mode decoder for r.
func NewRecoveringReader(r io.Reader) *RecoveringReader {
	return &RecoveringReader{r: r}
}

// Drops returns the accounting so far; final once Read has returned
// io.EOF.
func (r *RecoveringReader) Drops() DropStats { return r.drops }

// Events returns the number of events decoded so far.
func (r *RecoveringReader) Events() int { return r.events }

// fill reads more input into the window, setting eof at stream end.
// It reports whether any bytes arrived.
func (r *RecoveringReader) fill() (bool, error) {
	if r.eof {
		return false, nil
	}
	// Compact before growing: keep the window at the buffer's front.
	if r.start > 0 {
		n := copy(r.buf, r.buf[r.start:r.end])
		r.start, r.end = 0, n
	}
	const chunk = 32 * 1024
	if len(r.buf)-r.end < chunk {
		nb := make([]byte, r.end+chunk)
		copy(nb, r.buf[:r.end])
		r.buf = nb
	}
	n, err := r.r.Read(r.buf[r.end:])
	r.end += n
	switch {
	case err == io.EOF:
		r.eof = true
	case err != nil:
		return n > 0, err
	}
	return n > 0, nil
}

// window returns the undecoded bytes currently buffered.
func (r *RecoveringReader) window() []byte { return r.buf[r.start:r.end] }

// header consumes and verifies the magic. It is strict: recovery
// never invents a stream identity.
func (r *RecoveringReader) header() error {
	for r.end-r.start < len(binaryMagic) && !r.eof {
		if _, err := r.fill(); err != nil {
			return err
		}
	}
	if r.end-r.start < len(binaryMagic) {
		return fmt.Errorf("%w: truncated header", ErrBadMagic)
	}
	for i, b := range binaryMagic {
		if r.buf[r.start+i] != b {
			return ErrBadMagic
		}
	}
	r.start += len(binaryMagic)
	r.readHdr = true
	return nil
}

// skipByte abandons one window byte as part of a resync episode.
func (r *RecoveringReader) skipByte() {
	r.inSkip = true
	r.drops.BytesDropped++
	r.start++
}

// closeEpisode ends a resync episode, if one is open.
func (r *RecoveringReader) closeEpisode() {
	if r.inSkip {
		r.inSkip = false
		r.drops.CorruptRecords++
	}
}

// Read decodes the next recoverable event. io.EOF is the clean end:
// by then Drops holds the final accounting. Errors other than io.EOF
// are real I/O failures from the underlying reader (or a damaged
// header) — recovery absorbs damaged content, not a failing disk.
func (r *RecoveringReader) Read() (Event, error) {
	if !r.readHdr {
		if err := r.header(); err != nil {
			return Event{}, err
		}
	}
	for {
		e, n, err := decodeRecord(r.window(), r.lastInstr)
		switch {
		case err == nil:
			r.closeEpisode()
			r.start += n
			r.lastInstr = e.Instr
			r.events++
			return e, nil
		case errors.Is(err, errShortRecord):
			if !r.eof {
				if _, ferr := r.fill(); ferr != nil {
					return Event{}, ferr
				}
				continue
			}
			// The stream ended inside this record. If we were already
			// resyncing, keep sliding: a shorter record might still
			// decode from a later start. Otherwise this is the torn
			// tail: drop the remainder in one accounted bite.
			if r.inSkip && r.end-r.start > 0 {
				r.skipByte()
				continue
			}
			if rest := r.end - r.start; rest > 0 {
				r.drops.TornTail++
				r.drops.BytesDropped += uint64(rest)
				r.start = r.end
			}
			r.closeEpisode()
			return Event{}, io.EOF
		default:
			// Corrupt bytes at the window start: resync one byte at a
			// time. Progress is guaranteed — each attempt consumes a
			// byte — so recovery terminates on any input.
			r.skipByte()
		}
	}
}

// ReadAll decodes the remainder of the stream with recovery.
func (r *RecoveringReader) ReadAll() ([]Event, error) {
	var events []Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
}
