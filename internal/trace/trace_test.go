package trace

import (
	"strings"
	"testing"
)

func TestEventConstructors(t *testing.T) {
	a := Alloc(3, 64, 100)
	if a.Kind != KindAlloc || a.ID != 3 || a.Size != 64 || a.Instr != 100 {
		t.Errorf("Alloc fields wrong: %+v", a)
	}
	f := Free(3, 200)
	if f.Kind != KindFree || f.ID != 3 || f.Instr != 200 {
		t.Errorf("Free fields wrong: %+v", f)
	}
	p := PtrWrite(1, 2, 3, 300)
	if p.Kind != KindPtrWrite || p.ID != 1 || p.Field != 2 || p.Target != 3 {
		t.Errorf("PtrWrite fields wrong: %+v", p)
	}
	m := Mark("phase", 400)
	if m.Kind != KindMark || m.Label != "phase" {
		t.Errorf("Mark fields wrong: %+v", m)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindAlloc: "a", KindFree: "f", KindPtrWrite: "p", KindMark: "m"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

func TestStatsSimpleLifecycle(t *testing.T) {
	events := []Event{
		Alloc(1, 100, 0),
		Alloc(2, 50, 10),
		Free(1, 20),
		Alloc(3, 25, 30),
	}
	s, err := Measure(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs != 3 || s.Frees != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.TotalBytes != 175 {
		t.Errorf("TotalBytes = %d, want 175", s.TotalBytes)
	}
	if s.LiveBytes != 75 {
		t.Errorf("LiveBytes = %d, want 75", s.LiveBytes)
	}
	if s.MaxLive != 150 {
		t.Errorf("MaxLive = %d, want 150", s.MaxLive)
	}
	if s.LiveObjects != 2 || s.MaxObjects != 2 {
		t.Errorf("objects: %+v", s)
	}
	if s.LastInstr != 30 {
		t.Errorf("LastInstr = %d", s.LastInstr)
	}
}

func TestStatsRejectsDuplicateAlloc(t *testing.T) {
	err := Validate([]Event{Alloc(1, 8, 0), Alloc(1, 8, 1)})
	if err == nil {
		t.Fatal("duplicate alloc accepted")
	}
}

func TestStatsRejectsDoubleFree(t *testing.T) {
	err := Validate([]Event{Alloc(1, 8, 0), Free(1, 1), Free(1, 2)})
	if err == nil {
		t.Fatal("double free accepted")
	}
}

func TestStatsRejectsFreeOfUnknown(t *testing.T) {
	if Validate([]Event{Free(42, 0)}) == nil {
		t.Fatal("free of unknown object accepted")
	}
}

func TestStatsRejectsClockRegression(t *testing.T) {
	err := Validate([]Event{Alloc(1, 8, 10), Alloc(2, 8, 5)})
	if err == nil {
		t.Fatal("clock regression accepted")
	}
}

func TestStatsRejectsNilAlloc(t *testing.T) {
	if Validate([]Event{Alloc(NilObject, 8, 0)}) == nil {
		t.Fatal("allocation of nil id accepted")
	}
}

func TestStatsPtrWriteValidation(t *testing.T) {
	ok := []Event{
		Alloc(1, 8, 0), Alloc(2, 8, 1),
		PtrWrite(1, 0, 2, 2),
		PtrWrite(1, 0, NilObject, 3), // null store is fine
	}
	if err := Validate(ok); err != nil {
		t.Fatalf("valid ptr writes rejected: %v", err)
	}
	bad := []Event{Alloc(1, 8, 0), PtrWrite(1, 0, 99, 1)}
	if Validate(bad) == nil {
		t.Fatal("ptr write to unknown target accepted")
	}
	bad2 := []Event{Alloc(1, 8, 0), Free(1, 1), PtrWrite(1, 0, NilObject, 2)}
	if Validate(bad2) == nil {
		t.Fatal("ptr write into freed object accepted")
	}
}

func TestStatsRejectsUnknownKind(t *testing.T) {
	if Validate([]Event{{Kind: Kind(77)}}) == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestStatsMarksCounted(t *testing.T) {
	s, err := Measure([]Event{Mark("x", 0), Mark("y", 1)})
	if err != nil || s.Marks != 2 {
		t.Fatalf("marks = %d, err = %v", s.Marks, err)
	}
}

func TestBuilderProducesValidTrace(t *testing.T) {
	b := NewBuilder()
	a := b.Alloc(100)
	b.Advance(10)
	c := b.Alloc(50)
	b.PtrWrite(a, 0, c)
	b.Advance(5)
	b.Free(a)
	b.Mark("done")
	events := b.Events()
	if err := Validate(events); err != nil {
		t.Fatalf("builder produced invalid trace: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Instr != 0 || events[1].Instr != 10 || events[3].Instr != 15 {
		t.Errorf("timestamps wrong: %v", events)
	}
	if b.Live(a) {
		t.Error("freed object reported live")
	}
	if !b.Live(c) {
		t.Error("live object reported dead")
	}
	if len(b.LiveIDs()) != 1 || b.LiveIDs()[0] != c {
		t.Errorf("LiveIDs = %v", b.LiveIDs())
	}
}

func TestBuilderUniqueIDs(t *testing.T) {
	b := NewBuilder()
	seen := make(map[ObjectID]bool)
	for i := 0; i < 1000; i++ {
		id := b.Alloc(8)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if i%3 == 0 {
			b.Free(id)
		}
	}
}

func TestBuilderFreePanicsOnDead(t *testing.T) {
	b := NewBuilder()
	id := b.Alloc(8)
	b.Free(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double free via builder did not panic")
		}
	}()
	b.Free(id)
}

func TestBuilderNow(t *testing.T) {
	b := NewBuilder()
	if b.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	b.Advance(7)
	b.Advance(3)
	if b.Now() != 10 {
		t.Fatalf("Now = %d, want 10", b.Now())
	}
}
