package trace

import "testing"

func TestMeasureForwardBasics(t *testing.T) {
	events := []Event{
		Alloc(1, 8, 0),
		Alloc(2, 8, 1),
		PtrWrite(1, 0, 2, 2),         // forward: 1 older than 2
		PtrWrite(2, 0, 1, 3),         // backward
		PtrWrite(1, 1, NilObject, 4), // nil
		Alloc(3, 8, 5),
		PtrWrite(1, 0, 3, 6), // forward
	}
	fs, err := MeasureForward(events)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stores != 4 || fs.NilStore != 1 || fs.Forward != 2 || fs.Backward != 1 {
		t.Fatalf("stats %+v", fs)
	}
	if got := fs.ForwardFraction(); got != 2.0/3.0 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestMeasureForwardEmptyAndNilOnly(t *testing.T) {
	fs, err := MeasureForward([]Event{Alloc(1, 8, 0), PtrWrite(1, 0, NilObject, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if fs.ForwardFraction() != 0 {
		t.Fatalf("fraction = %v", fs.ForwardFraction())
	}
}

func TestMeasureForwardDeadReference(t *testing.T) {
	events := []Event{
		Alloc(1, 8, 0),
		Alloc(2, 8, 1),
		Free(2, 2),
		PtrWrite(1, 0, 2, 3),
	}
	if _, err := MeasureForward(events); err == nil {
		t.Fatal("store to dead object accepted")
	}
}

func TestMeasureForwardViaBuilder(t *testing.T) {
	b := NewBuilder()
	ids := make([]ObjectID, 10)
	for i := range ids {
		ids[i] = b.Alloc(16)
	}
	// Stores from each object to its predecessor: all backward.
	for i := 1; i < len(ids); i++ {
		b.PtrWrite(ids[i], 0, ids[i-1])
	}
	fs, err := MeasureForward(b.Events())
	if err != nil {
		t.Fatal(err)
	}
	if fs.Forward != 0 || fs.Backward != 9 {
		t.Fatalf("stats %+v", fs)
	}
}
