package trace

import (
	"math"
	"testing"
)

func lifetimeFixture() []Event {
	// Object 1: 100 bytes, lives 300 bytes of allocation.
	// Object 2: 100 bytes, lives 200 bytes.
	// Object 3: 100 bytes, permanent.
	// Object 4: 100 bytes, dies immediately (lifetime 0).
	return []Event{
		Alloc(1, 100, 0), // clock 100
		Alloc(2, 100, 1), // clock 200
		Alloc(3, 100, 2), // clock 300
		Alloc(4, 100, 3), // clock 400
		Free(4, 4),       // life 0
		Free(2, 5),       // life 200
		Free(1, 6),       // life 300
	}
}

func TestMeasureLifetimesBasics(t *testing.T) {
	ls, err := MeasureLifetimes(lifetimeFixture())
	if err != nil {
		t.Fatal(err)
	}
	if ls.TotalObjects != 4 || ls.TotalBytes != 400 {
		t.Fatalf("totals: %+v", ls)
	}
	if ls.FreedBytes != 300 || ls.PermanentBytes != 100 {
		t.Fatalf("freed %d permanent %d", ls.FreedBytes, ls.PermanentBytes)
	}
	if ls.PermanentFraction() != 0.25 || ls.FreedFraction() != 0.75 {
		t.Fatalf("fractions %v/%v", ls.PermanentFraction(), ls.FreedFraction())
	}
	if ls.MeanObjectBytes != 100 {
		t.Fatalf("mean object %v", ls.MeanObjectBytes)
	}
}

func TestSurvivalFunction(t *testing.T) {
	ls, err := MeasureLifetimes(lifetimeFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Lifetimes (bytes): 0, 200, 300 — 100 bytes each.
	cases := []struct {
		age  uint64
		want float64
	}{
		{0, 1},         // everything lives at least 0
		{1, 2.0 / 3},   // the life-0 object is gone
		{200, 2.0 / 3}, // >= 200 still includes both
		{201, 1.0 / 3},
		{300, 1.0 / 3},
		{301, 0},
	}
	for _, c := range cases {
		if got := ls.SurvivalAt(c.age); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SurvivalAt(%d) = %v, want %v", c.age, got, c.want)
		}
	}
}

func TestLifetimeQuantiles(t *testing.T) {
	ls, err := MeasureLifetimes(lifetimeFixture())
	if err != nil {
		t.Fatal(err)
	}
	if q := ls.LifetimeQuantile(1.0); q != 300 {
		t.Errorf("q1.0 = %d", q)
	}
	if q := ls.LifetimeQuantile(0.5); q != 200 {
		t.Errorf("q0.5 = %d", q)
	}
	// Out-of-range quantiles clamp.
	if ls.LifetimeQuantile(-1) != ls.LifetimeQuantile(0) {
		t.Error("negative quantile not clamped")
	}
	if ls.LifetimeQuantile(2) != 300 {
		t.Error("overflow quantile not clamped")
	}
}

func TestMeanLifetimeOfRange(t *testing.T) {
	ls, err := MeasureLifetimes(lifetimeFixture())
	if err != nil {
		t.Fatal(err)
	}
	whole := ls.MeanLifetimeOfRange(0, 1)
	if math.Abs(whole-500.0/3) > 1 {
		t.Errorf("overall mean lifetime %v, want ~166.7", whole)
	}
	lower := ls.MeanLifetimeOfRange(0, 0.5)
	upper := ls.MeanLifetimeOfRange(0.5, 1)
	if lower >= upper {
		t.Errorf("lower-half mean %v not below upper-half %v", lower, upper)
	}
}

func TestMeasureLifetimesErrors(t *testing.T) {
	if _, err := MeasureLifetimes([]Event{Free(1, 0)}); err == nil {
		t.Fatal("free of unknown accepted")
	}
	if _, err := MeasureLifetimes([]Event{Alloc(1, 8, 0), Alloc(1, 8, 1)}); err == nil {
		t.Fatal("duplicate alloc accepted")
	}
}

func TestMeasureLifetimesEmpty(t *testing.T) {
	ls, err := MeasureLifetimes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.SurvivalAt(0) != 0 || ls.LifetimeQuantile(0.5) != 0 || ls.PermanentFraction() != 0 {
		t.Fatal("empty stats should be zeros")
	}
}
