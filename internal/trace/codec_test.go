package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

func sampleTrace() []Event {
	return []Event{
		Alloc(1, 128, 0),
		Alloc(2, 64, 15),
		PtrWrite(1, 0, 2, 20),
		Mark("phase one", 25),
		Free(1, 40),
		PtrWrite(2, 3, NilObject, 41),
		Alloc(3, 1<<20, 1<<40),
		Free(3, 1<<40+5),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, events)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace decoded to %d events", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("not a trace at all")).ReadAll()
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected bad-magic error, got %v", err)
	}
}

func TestBinaryTruncatedHeader(t *testing.T) {
	_, err := NewReader(strings.NewReader("DT")).ReadAll()
	if err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestBinaryTruncatedEvent(t *testing.T) {
	events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop a few bytes off the end: decoding must fail, not hang or
	// silently succeed with a short read mid-event.
	truncated := full[:len(full)-2]
	_, err := NewReader(bytes.NewReader(truncated)).ReadAll()
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if err == io.EOF {
		t.Fatal("truncation reported as clean EOF")
	}
}

func TestBinaryWriterRejectsClockRegression(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Alloc(1, 8, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Alloc(2, 8, 50)); err == nil {
		t.Fatal("writer accepted clock regression")
	}
}

func TestBinaryWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, e := range sampleTrace() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
		if w.Count() != i+1 {
			t.Fatalf("Count = %d after %d writes", w.Count(), i+1)
		}
	}
}

func TestBinaryRejectsUnknownKindOnWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(Event{Kind: Kind(200)}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}

func TestBinaryRejectsUnknownKindOnRead(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic)
	buf.WriteByte(200)
	_, err := NewReader(&buf).ReadAll()
	if err == nil {
		t.Fatal("unknown kind byte decoded")
	}
}

func TestBinaryMarkLabelLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic)
	buf.WriteByte(byte(KindMark))
	// Claim a 1 GB label without providing it.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04})
	_, err := NewReader(&buf).ReadAll()
	if err == nil {
		t.Fatal("absurd label length accepted")
	}
}

func TestBinaryRoundTripRandomTraces(t *testing.T) {
	// Property: encode→decode is the identity on any well-formed trace.
	r := xrand.New(2024)
	check := func(seed uint32) bool {
		rr := xrand.New(uint64(seed) ^ r.Uint64())
		b := NewBuilder()
		var liveList []ObjectID
		for i := 0; i < 200; i++ {
			b.Advance(uint64(rr.Intn(1000)))
			switch {
			case len(liveList) > 0 && rr.Bool(0.3):
				k := rr.Intn(len(liveList))
				b.Free(liveList[k])
				liveList = append(liveList[:k], liveList[k+1:]...)
			case len(liveList) > 1 && rr.Bool(0.2):
				b.PtrWrite(liveList[rr.Intn(len(liveList))], uint32(rr.Intn(8)), liveList[rr.Intn(len(liveList))])
			case rr.Bool(0.05):
				b.Mark("m")
			default:
				liveList = append(liveList, b.Alloc(uint64(rr.Range(1, 4096))))
			}
		}
		events := b.Events()
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, events)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("text round trip mismatch:\n got %v\nwant %v", got, events)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
a 1 100 0

f 1 10
`
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{Alloc(1, 100, 0), Free(1, 10)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTextMarkWithSpacesAndQuotes(t *testing.T) {
	events := []Event{Mark(`hello "quoted" world`, 5)}
	var buf bytes.Buffer
	if err := WriteText(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("got %v, want %v", got, events)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"z 1 2 3",       // unknown mnemonic
		"a 1",           // missing fields
		"a x 2 3",       // non-numeric
		"p 1 2 3",       // ptr write missing instr
		`m hello 5`,     // unquoted label
		`m "unclosed`,   // unterminated label
		`m "ok" notnum`, // bad timestamp
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) accepted malformed input", in)
		}
	}
}

func TestTextLineNumbersInErrors(t *testing.T) {
	_, err := ReadText(strings.NewReader("a 1 8 0\nbogus line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should cite line 2, got %v", err)
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	builder := NewBuilder()
	for i := 0; i < 10000; i++ {
		builder.Advance(50)
		id := builder.Alloc(64)
		if i%2 == 0 {
			builder.Free(id)
		}
	}
	events := builder.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteAll(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	builder := NewBuilder()
	for i := 0; i < 10000; i++ {
		builder.Advance(50)
		id := builder.Alloc(64)
		if i%2 == 0 {
			builder.Free(id)
		}
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, builder.Events()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewReader(bytes.NewReader(data)).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReadBatchMatchesRead pins ReadBatch to the sequential Read path:
// for every batch size, including 1 and larger than the trace, the
// concatenated batches must equal the event-at-a-time decode, a short
// final batch must carry a nil error, and the call after the clean end
// must return (0, io.EOF).
func TestReadBatchMatchesRead(t *testing.T) {
	events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	for _, size := range []int{1, 2, 3, len(events), len(events) + 5} {
		r := NewReader(bytes.NewReader(encoded))
		dst := make([]Event, size)
		var got []Event
		for {
			n, err := r.ReadBatch(dst)
			if err == io.EOF {
				if n != 0 {
					t.Fatalf("size %d: io.EOF with %d events — EOF must come alone", size, n)
				}
				break
			}
			if err != nil {
				t.Fatalf("size %d: ReadBatch: %v", size, err)
			}
			if n == 0 {
				t.Fatalf("size %d: ReadBatch returned 0 events with nil error", size)
			}
			got = append(got, dst[:n]...)
			if n < size {
				// Short batch: the stream ended cleanly mid-batch, so the
				// next call must report the EOF on its own.
				if n2, err2 := r.ReadBatch(dst); n2 != 0 || err2 != io.EOF {
					t.Fatalf("size %d: call after short batch = (%d, %v), want (0, io.EOF)", size, n2, err2)
				}
				break
			}
		}
		if !reflect.DeepEqual(got, events) {
			t.Errorf("size %d: ReadBatch decode differs from Read decode:\n got %v\nwant %v", size, got, events)
		}
	}
}

// TestReadBatchTruncatedStream: a decode error mid-batch must return
// the successfully decoded prefix alongside the error.
func TestReadBatchTruncatedStream(t *testing.T) {
	events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-1]

	r := NewReader(bytes.NewReader(truncated))
	dst := make([]Event, len(events)+1)
	n, err := r.ReadBatch(dst)
	if err == nil || err == io.EOF {
		t.Fatalf("truncated stream decoded without error (n=%d, err=%v)", n, err)
	}
	if n == 0 || n >= len(events) {
		t.Fatalf("truncated stream returned %d events, want a non-empty strict prefix of %d", n, len(events))
	}
	if !reflect.DeepEqual(dst[:n], events[:n]) {
		t.Errorf("prefix before the decode error differs from the original events")
	}
}

// TestReadBatchEmptyTrace: a header-only stream is a clean EOF.
func TestReadBatchEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	n, err := r.ReadBatch(make([]Event, 4))
	if n != 0 || err != io.EOF {
		t.Fatalf("empty trace ReadBatch = (%d, %v), want (0, io.EOF)", n, err)
	}
}
