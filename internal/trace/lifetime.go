package trace

import (
	"fmt"
	"sort"
)

// LifetimeStats characterizes a trace's object demographics on the
// allocation clock — the quantities the paper's lifetime arguments
// (and this repository's workload calibration) are stated in.
type LifetimeStats struct {
	TotalObjects int
	TotalBytes   uint64

	// FreedBytes are bytes whose death was observed; the rest were
	// still live when the trace ended ("permanent" for modelling).
	FreedBytes     uint64
	PermanentBytes uint64

	MeanObjectBytes float64

	// lifetimes holds (lifetime-in-allocated-bytes, objectBytes) for
	// every freed object, sorted by lifetime.
	lifetimes []lifeSample
}

type lifeSample struct {
	life  uint64 // bytes allocated between birth and death
	bytes uint64 // the object's own size
}

// PermanentFraction returns the byte fraction never observed to die.
func (ls *LifetimeStats) PermanentFraction() float64 {
	if ls.TotalBytes == 0 {
		return 0
	}
	return float64(ls.PermanentBytes) / float64(ls.TotalBytes)
}

// SurvivalAt returns the fraction of freed bytes that lived at least
// `age` bytes of subsequent allocation — the byte-weighted survival
// function S(age) over observed deaths.
func (ls *LifetimeStats) SurvivalAt(age uint64) float64 {
	if ls.FreedBytes == 0 {
		return 0
	}
	// lifetimes sorted ascending: find the first sample with life >= age.
	i := sort.Search(len(ls.lifetimes), func(i int) bool { return ls.lifetimes[i].life >= age })
	var surviving uint64
	for ; i < len(ls.lifetimes); i++ {
		surviving += ls.lifetimes[i].bytes
	}
	return float64(surviving) / float64(ls.FreedBytes)
}

// LifetimeQuantile returns the byte-weighted q-quantile (0..1) of the
// observed lifetimes, 0 if nothing died.
func (ls *LifetimeStats) LifetimeQuantile(q float64) uint64 {
	if len(ls.lifetimes) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(ls.FreedBytes))
	var acc uint64
	for _, s := range ls.lifetimes {
		acc += s.bytes
		if acc >= target {
			return s.life
		}
	}
	return ls.lifetimes[len(ls.lifetimes)-1].life
}

// MeanLifetimeOfRange returns the byte-weighted mean lifetime of the
// freed objects whose lifetimes fall within [lo, hi) quantiles — used
// to fit mixture components.
func (ls *LifetimeStats) MeanLifetimeOfRange(loQ, hiQ float64) float64 {
	if len(ls.lifetimes) == 0 {
		return 0
	}
	loAge := ls.LifetimeQuantile(loQ)
	hiAge := ls.LifetimeQuantile(hiQ)
	inclusive := hiQ >= 1 || loAge == hiAge // the top quantile owns the maximum
	var sum, weight uint64
	for _, s := range ls.lifetimes {
		if s.life >= loAge && (s.life < hiAge || inclusive) {
			sum += s.life * s.bytes
			weight += s.bytes
		}
	}
	if weight == 0 {
		return float64(hiAge)
	}
	return float64(sum) / float64(weight)
}

// FreedFraction returns the byte fraction observed to die.
func (ls *LifetimeStats) FreedFraction() float64 {
	if ls.TotalBytes == 0 {
		return 0
	}
	return float64(ls.FreedBytes) / float64(ls.TotalBytes)
}

// MeasureLifetimes computes lifetime statistics for a well-formed
// trace. Ages are measured on the allocation clock: an object's
// lifetime is the number of bytes allocated between its birth and its
// free event, the paper's notion of object age.
func MeasureLifetimes(events []Event) (*LifetimeStats, error) {
	ls := &LifetimeStats{}
	type birthRec struct {
		clock uint64
		size  uint64
	}
	births := make(map[ObjectID]birthRec)
	var clock uint64
	for i, e := range events {
		switch e.Kind {
		case KindAlloc:
			if _, dup := births[e.ID]; dup {
				return nil, fmt.Errorf("trace: event %d: duplicate allocation of %d", i, e.ID)
			}
			clock += e.Size
			births[e.ID] = birthRec{clock: clock, size: e.Size}
			ls.TotalObjects++
			ls.TotalBytes += e.Size
		case KindFree:
			b, ok := births[e.ID]
			if !ok {
				return nil, fmt.Errorf("trace: event %d: free of unknown object %d", i, e.ID)
			}
			delete(births, e.ID)
			ls.FreedBytes += b.size
			ls.lifetimes = append(ls.lifetimes, lifeSample{life: clock - b.clock, bytes: b.size})
		case KindPtrWrite, KindMark:
			// Pointer stores and annotations do not affect lifetimes.
		default:
			return nil, fmt.Errorf("trace: event %d: unknown kind %d", i, e.Kind)
		}
	}
	for _, b := range births { //dtbvet:ignore determinism -- order-insensitive sum of surviving bytes
		ls.PermanentBytes += b.size
	}
	if ls.TotalObjects > 0 {
		ls.MeanObjectBytes = float64(ls.TotalBytes) / float64(ls.TotalObjects)
	}
	sort.Slice(ls.lifetimes, func(a, b int) bool { return ls.lifetimes[a].life < ls.lifetimes[b].life })
	return ls, nil
}
