package trace

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestWindowFullRangeIsIdentityPlusNothing(t *testing.T) {
	events := []Event{
		Alloc(1, 10, 0), Alloc(2, 20, 5), Free(1, 9), Alloc(3, 30, 12),
	}
	got, err := Window(events, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("full window has %d events, want %d", len(got), len(events))
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSynthesizesSurvivors(t *testing.T) {
	events := []Event{
		Alloc(1, 10, 0), // dies before window
		Alloc(2, 20, 1), // survives into window
		Alloc(3, 30, 2), // survives into window
		Free(1, 3),
		Alloc(4, 40, 50), // inside window
		Free(2, 60),      // inside window
	}
	got, err := Window(events, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatalf("windowed trace invalid: %v\n%v", err, got)
	}
	// Survivors 2 and 3 synthesized at instant 10, in original order.
	if got[0] != Alloc(2, 20, 10) || got[1] != Alloc(3, 30, 10) {
		t.Fatalf("preamble wrong: %v", got[:2])
	}
	// Object 1's free must be gone; object 4 and free(2) kept.
	for _, e := range got {
		if e.ID == 1 {
			t.Fatalf("dead-before-window object leaked: %v", e)
		}
	}
	if got[len(got)-1] != Free(2, 60) {
		t.Fatalf("tail wrong: %v", got[len(got)-1])
	}
}

func TestWindowDropsCrossBoundaryPtrWrites(t *testing.T) {
	events := []Event{
		Alloc(1, 10, 0),
		Free(1, 2), // 1 is gone before the window
		Alloc(2, 10, 20),
		PtrWrite(2, 0, 2, 25),
		PtrWrite(2, 1, NilObject, 26),
	}
	got, err := Window(events, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
	ptrs := 0
	for _, e := range got {
		if e.Kind == KindPtrWrite {
			ptrs++
		}
	}
	if ptrs != 2 {
		t.Fatalf("%d pointer stores kept, want 2", ptrs)
	}
}

func TestWindowRejectsBadRange(t *testing.T) {
	if _, err := Window(nil, 10, 5); err == nil {
		t.Fatal("to < from accepted")
	}
}

func TestWindowEmptyMiddle(t *testing.T) {
	events := []Event{Alloc(1, 10, 0), Free(1, 5)}
	got, err := Window(events, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("window over dead air has %d events", len(got))
	}
}

func TestWindowPreservesRelativeAges(t *testing.T) {
	// Survivor allocation order must match original order even when
	// map iteration would scramble it.
	b := NewBuilder()
	var ids []ObjectID
	for i := 0; i < 50; i++ {
		b.Advance(1)
		ids = append(ids, b.Alloc(uint64(10+i)))
	}
	b.Advance(100)
	b.Alloc(5) // in-window event
	got, err := Window(b.Events(), 60, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got[i].ID != ids[i] {
			t.Fatalf("preamble order broken at %d: %v", i, got[i])
		}
	}
}

func TestWindowOnRandomTracesStaysValid(t *testing.T) {
	r := xrand.New(77)
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder()
		var live []ObjectID
		for i := 0; i < 300; i++ {
			b.Advance(uint64(r.Range(1, 50)))
			switch {
			case len(live) > 0 && r.Bool(0.4):
				k := r.Intn(len(live))
				b.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			case len(live) > 1 && r.Bool(0.2):
				b.PtrWrite(live[r.Intn(len(live))], 0, live[r.Intn(len(live))])
			default:
				live = append(live, b.Alloc(uint64(r.Range(8, 256))))
			}
		}
		events := b.Events()
		end := events[len(events)-1].Instr
		from := r.Uint64() % (end + 1)
		to := from + r.Uint64()%(end-from+1)
		got, err := Window(events, from, to)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(got); err != nil {
			t.Fatalf("trial %d: windowed trace invalid: %v", trial, err)
		}
	}
}
