package trace

import (
	"bytes"
	"testing"
)

// FuzzReadText: the text parser must never panic and must only accept
// lines it can re-serialize.
func FuzzReadText(f *testing.F) {
	f.Add("a 1 100 0\nf 1 10\n")
	f.Add("p 1 0 2 5\nm \"label\" 6\n")
	f.Add("# comment\n\n a 2 8 1")
	f.Add(`m "esc\"aped" 9`)
	f.Add("a 99999999999999999999 1 1") // overflow
	f.Add("m \"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadText(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, events); err != nil {
			t.Fatalf("accepted events failed to serialize: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("serialized form failed to parse: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count %d -> %d", len(events), len(again))
		}
	})
}

// FuzzReader: the binary decoder must never panic or over-allocate on
// corrupt streams.
func FuzzReader(f *testing.F) {
	good := func(events []Event) []byte {
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(good(nil))
	f.Add(good([]Event{Alloc(1, 64, 0), Free(1, 5)}))
	f.Add(good([]Event{Mark("m", 1), PtrWrite(1, 2, 3, 4)}))
	f.Add([]byte("DTBT\x01\xff\xff\xff"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		// A cleanly decoded stream re-encodes, provided its clock is
		// monotone (the decoder guarantees that by construction).
		if err := WriteAll(bytes.NewBuffer(nil), events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
	})
}

// FuzzRecoveringReader: recovery must terminate on any input (resync
// advances at least one byte per attempt), keep its drop accounting
// exact, and salvage only well-formed traces.
func FuzzRecoveringReader(f *testing.F) {
	good := func(events []Event) []byte {
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	clean := good([]Event{Alloc(1, 64, 0), PtrWrite(1, 0, 2, 3), Mark("m", 5), Free(1, 9)})
	f.Add(clean)
	f.Add(clean[:len(clean)-2])                      // torn tail
	f.Add(append(clean[:8], clean[10:]...))          // bytes cut mid-stream
	f.Add(append(good(nil), 0xFF, 0xFF, 0x01, 0x02)) // garbage body
	f.Add([]byte("DTBT\x01"))                        // header only
	f.Add([]byte("garbage"))                         // damaged header
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecoveringReader(bytes.NewReader(data))
		events, err := rr.ReadAll()
		if err != nil {
			// Only the strict header check may fail on an in-memory
			// stream; content damage must always be recovered past.
			if len(data) >= len(binaryMagic) && bytes.Equal(data[:len(binaryMagic)], binaryMagic) {
				t.Fatalf("recovery failed on a well-headed stream: %v", err)
			}
			return
		}
		drops := rr.Drops()
		// The accounting invariants the audit layer relies on.
		if (drops.BytesDropped > 0) != drops.Any() {
			t.Fatalf("inconsistent accounting: %+v", drops)
		}
		if drops.TornTail > 1 {
			t.Fatalf("stream ended %d times: %+v", drops.TornTail, drops)
		}
		if body := uint64(len(data) - len(binaryMagic)); drops.BytesDropped > body {
			t.Fatalf("dropped %d bytes from a %d-byte body", drops.BytesDropped, body)
		}
		if rr.Events() != len(events) {
			t.Fatalf("Events()=%d but %d events decoded", rr.Events(), len(events))
		}
		// The clock is monotone even across resync gaps.
		for i := 1; i < len(events); i++ {
			if events[i].Instr < events[i-1].Instr {
				t.Fatalf("clock regressed at %d: %d -> %d", i, events[i-1].Instr, events[i].Instr)
			}
		}
		// Whatever was salvaged re-encodes canonically: encode once,
		// strict-decode, and get the identical events back.
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			t.Fatalf("recovered events failed to re-encode: %v", err)
		}
		again, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("re-encoded stream failed strict decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-encode changed event count %d -> %d", len(events), len(again))
		}
		for i := range again {
			if again[i] != events[i] {
				t.Fatalf("re-encode changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
