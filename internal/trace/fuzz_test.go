package trace

import (
	"bytes"
	"testing"
)

// FuzzReadText: the text parser must never panic and must only accept
// lines it can re-serialize.
func FuzzReadText(f *testing.F) {
	f.Add("a 1 100 0\nf 1 10\n")
	f.Add("p 1 0 2 5\nm \"label\" 6\n")
	f.Add("# comment\n\n a 2 8 1")
	f.Add(`m "esc\"aped" 9`)
	f.Add("a 99999999999999999999 1 1") // overflow
	f.Add("m \"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadText(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, events); err != nil {
			t.Fatalf("accepted events failed to serialize: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("serialized form failed to parse: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count %d -> %d", len(events), len(again))
		}
	})
}

// FuzzReader: the binary decoder must never panic or over-allocate on
// corrupt streams.
func FuzzReader(f *testing.F) {
	good := func(events []Event) []byte {
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(good(nil))
	f.Add(good([]Event{Alloc(1, 64, 0), Free(1, 5)}))
	f.Add(good([]Event{Mark("m", 1), PtrWrite(1, 2, 3, 4)}))
	f.Add([]byte("DTBT\x01\xff\xff\xff"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		// A cleanly decoded stream re-encodes, provided its clock is
		// monotone (the decoder guarantees that by construction).
		if err := WriteAll(bytes.NewBuffer(nil), events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
	})
}
