package trace

import (
	"bytes"
	"io"
	"testing"
)

func digestFixture() []Event {
	return []Event{
		Alloc(1, 64, 10),
		Alloc(2, 128, 20),
		PtrWrite(1, 0, 2, 25),
		Mark("phase", 30),
		Free(1, 40),
		Free(2, 50),
	}
}

// TestStreamDigestMatchesEventDigest: hashing the raw binary bytes at
// decode time and re-encoding the decoded events must agree — the
// property that lets a server digest an upload in one pass and a
// client predict that digest from events it never serialized to disk.
func TestStreamDigestMatchesEventDigest(t *testing.T) {
	events := digestFixture()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}

	dr := NewDigestingReader(bytes.NewReader(buf.Bytes()))
	decoded, err := NewReader(dr).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}

	want, err := DigestEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if got := dr.Sum(); got != want {
		t.Errorf("stream digest %s != event digest %s", got, want)
	}

	// And against the decoded events too: decode is lossless, so the
	// digest survives a round trip.
	redig, err := DigestEvents(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if redig != want {
		t.Errorf("round-tripped digest %s != original %s", redig, want)
	}
}

func TestDigestDistinguishesContent(t *testing.T) {
	a, err := DigestEvents(digestFixture())
	if err != nil {
		t.Fatal(err)
	}
	mutated := digestFixture()
	mutated[1].Size++
	b, err := DigestEvents(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different traces produced the same digest")
	}
	empty, err := DigestEvents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty == a || empty.IsZero() {
		t.Errorf("empty-trace digest %s should be distinct and non-zero (it covers the header)", empty)
	}
}

func TestDigestStringRoundTrip(t *testing.T) {
	d, err := DigestEvents(digestFixture())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != d {
		t.Errorf("ParseDigest(String) = %s, want %s", parsed, d)
	}
	for _, bad := range []string{"", "xyz", d.String()[:10], d.String() + "00"} {
		if _, err := ParseDigest(bad); err == nil {
			t.Errorf("ParseDigest(%q) accepted a malformed digest", bad)
		}
	}
}

// TestDigestingReaderHashesOnlyDeliveredBytes: the wrapper hashes
// what it returns, so a partial decode sums a prefix — callers gate
// on clean EOF before using the digest, and this pins the behavior
// that makes that gate necessary and sufficient.
func TestDigestingReaderHashesOnlyDeliveredBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, digestFixture()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	dr := NewDigestingReader(bytes.NewReader(raw))
	if _, err := io.CopyN(io.Discard, dr, int64(len(raw)/2)); err != nil {
		t.Fatal(err)
	}
	full, err := DigestEvents(digestFixture())
	if err != nil {
		t.Fatal(err)
	}
	if dr.Sum() == full {
		t.Error("half-read stream already matched the full digest")
	}
	if _, err := io.Copy(io.Discard, dr); err != nil {
		t.Fatal(err)
	}
	if got := dr.Sum(); got != full {
		t.Errorf("fully drained stream digest %s != %s", got, full)
	}
}
