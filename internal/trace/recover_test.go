package trace

import (
	"bytes"
	"io"
	"testing"
)

// sampleEvents returns a small deterministic trace with every event
// kind and non-trivial clock deltas.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindAlloc, ID: 1, Size: 64, Instr: 10},
		{Kind: KindAlloc, ID: 2, Size: 4096, Instr: 300},
		{Kind: KindPtrWrite, ID: 1, Field: 2, Target: 2, Instr: 420},
		{Kind: KindMark, Label: "phase-one", Instr: 1000},
		{Kind: KindFree, ID: 1, Instr: 1500},
		{Kind: KindAlloc, ID: 3, Size: 128, Instr: 2200},
		{Kind: KindFree, ID: 2, Instr: 9000},
	}
}

// encode returns the canonical binary stream for events.
func encode(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	return buf.Bytes()
}

// recordOffsets returns the byte offset where each event's record
// starts (and the total length as the final entry), derived from
// encoding successive prefixes — the delta clock makes each record's
// length a function of its prefix only.
func recordOffsets(t *testing.T, events []Event) []int {
	t.Helper()
	offs := make([]int, 0, len(events)+1)
	for i := 0; i <= len(events); i++ {
		offs = append(offs, len(encode(t, events[:i])))
	}
	return offs
}

func recoverAll(t *testing.T, data []byte) ([]Event, DropStats) {
	t.Helper()
	rr := NewRecoveringReader(bytes.NewReader(data))
	events, err := rr.ReadAll()
	if err != nil {
		t.Fatalf("RecoveringReader.ReadAll: %v", err)
	}
	return events, rr.Drops()
}

func TestRecoverCleanStream(t *testing.T) {
	want := sampleEvents()
	got, drops := recoverAll(t, encode(t, want))
	if drops.Any() {
		t.Fatalf("clean stream reported drops: %+v", drops)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecoverCorruptRecordExactAccounting(t *testing.T) {
	events := sampleEvents()
	data := encode(t, events)
	offs := recordOffsets(t, events)

	// Obliterate record 3 (the KindMark) with bytes that can never
	// start a record: every resync attempt fails on them, so the whole
	// span is dropped as one corrupt episode and decoding picks up at
	// record 4 exactly.
	const victim = 3
	start, end := offs[victim], offs[victim+1]
	for i := start; i < end; i++ {
		data[i] = 0xFF
	}

	got, drops := recoverAll(t, data)
	if want := (DropStats{CorruptRecords: 1, BytesDropped: uint64(end - start)}); drops != want {
		t.Fatalf("drops = %+v, want %+v", drops, want)
	}
	if want := len(events) - 1; len(got) != want {
		t.Fatalf("decoded %d events, want %d", len(got), want)
	}
	// Events before the damage decode identically; events after keep
	// their kind and payload, with the clock re-based across the gap
	// (the victim's delta is lost with its record).
	for i := 0; i < victim; i++ {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
	for i := victim + 1; i < len(events); i++ {
		g, w := got[i-1], events[i]
		if g.Kind != w.Kind || g.ID != w.ID || g.Size != w.Size || g.Label != w.Label {
			t.Errorf("post-gap event: got %+v, want payload of %+v", g, w)
		}
	}
	// The clock stays monotone through the resync.
	for i := 1; i < len(got); i++ {
		if got[i].Instr < got[i-1].Instr {
			t.Fatalf("clock regressed: %d then %d", got[i-1].Instr, got[i].Instr)
		}
	}
}

func TestRecoverTornTailExactAccounting(t *testing.T) {
	events := sampleEvents()
	data := encode(t, events)
	offs := recordOffsets(t, events)

	// Cut the stream two bytes into the final record: a torn tail. The
	// partial record's bytes are dropped in one accounted bite.
	last := len(events) - 1
	cut := offs[last] + 2
	if cut >= offs[last+1] {
		t.Fatalf("final record too short for the test: %d bytes", offs[last+1]-offs[last])
	}
	got, drops := recoverAll(t, data[:cut])
	if want := (DropStats{TornTail: 1, BytesDropped: uint64(cut - offs[last])}); drops != want {
		t.Fatalf("drops = %+v, want %+v", drops, want)
	}
	if len(got) != last {
		t.Fatalf("decoded %d events, want %d", len(got), last)
	}
}

func TestRecoverTruncationAtRecordBoundaryIsClean(t *testing.T) {
	events := sampleEvents()
	data := encode(t, events)
	offs := recordOffsets(t, events)
	// Truncation exactly between records loses trailing events but no
	// partial bytes: the decoder cannot know more was intended, so the
	// stream reads as a clean, shorter trace.
	got, drops := recoverAll(t, data[:offs[4]])
	if drops.Any() {
		t.Fatalf("boundary truncation reported drops: %+v", drops)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d events, want 4", len(got))
	}
}

func TestRecoverAllGarbageTerminates(t *testing.T) {
	data := append([]byte(nil), encode(t, nil)...) // header only
	garbage := bytes.Repeat([]byte{0xFF}, 64*1024)
	data = append(data, garbage...)
	got, drops := recoverAll(t, data)
	if len(got) != 0 {
		t.Fatalf("decoded %d events from garbage", len(got))
	}
	if want := (DropStats{CorruptRecords: 1, BytesDropped: uint64(len(garbage))}); drops != want {
		t.Fatalf("drops = %+v, want %+v", drops, want)
	}
}

func TestRecoverHeaderStaysStrict(t *testing.T) {
	rr := NewRecoveringReader(bytes.NewReader([]byte("NOTATRACE")))
	if _, err := rr.Read(); err == nil || !bytes.Contains([]byte(err.Error()), []byte("magic")) {
		t.Fatalf("damaged magic: got %v, want ErrBadMagic", err)
	}
	rr = NewRecoveringReader(bytes.NewReader(nil))
	if _, err := rr.Read(); err == nil || err == io.EOF {
		t.Fatalf("empty stream: got %v, want a bad-magic error", err)
	}
}

func TestRecoveredStreamReencodesCanonically(t *testing.T) {
	events := sampleEvents()
	data := encode(t, events)
	offs := recordOffsets(t, events)
	for i := offs[2]; i < offs[3]; i++ {
		data[i] = 0xFF
	}
	recovered, drops := recoverAll(t, data)
	if !drops.Any() {
		t.Fatal("expected drops from the corrupted record")
	}
	// Whatever recovery salvages is a well-formed trace: it re-encodes
	// and strict-decodes to exactly itself.
	reencoded := encode(t, recovered)
	got, err := NewReader(bytes.NewReader(reencoded)).ReadAll()
	if err != nil {
		t.Fatalf("strict re-decode of recovered stream: %v", err)
	}
	if len(got) != len(recovered) {
		t.Fatalf("re-decoded %d events, want %d", len(got), len(recovered))
	}
	for i := range got {
		if got[i] != recovered[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], recovered[i])
		}
	}
}

// Satellite regression: a header-only stream (what Writer.Flush emits
// for an empty trace) is a clean empty trace for both decoders, not a
// truncation error.
func TestHeaderOnlyStreamIsCleanEmptyTrace(t *testing.T) {
	headerOnly := encode(t, nil)

	sr := NewReader(bytes.NewReader(headerOnly))
	if _, err := sr.Read(); err != io.EOF {
		t.Fatalf("strict Read on header-only stream: %v, want io.EOF", err)
	}
	events, err := NewReader(bytes.NewReader(headerOnly)).ReadAll()
	if err != nil || len(events) != 0 {
		t.Fatalf("strict ReadAll on header-only stream: %d events, %v", len(events), err)
	}

	rr := NewRecoveringReader(bytes.NewReader(headerOnly))
	if _, err := rr.Read(); err != io.EOF {
		t.Fatalf("recovering Read on header-only stream: %v, want io.EOF", err)
	}
	if rr.Drops().Any() {
		t.Fatalf("header-only stream reported drops: %+v", rr.Drops())
	}
}

func TestDropStatsString(t *testing.T) {
	if got := (DropStats{}).String(); got != "no drops" {
		t.Errorf("zero DropStats: %q", got)
	}
	d := DropStats{CorruptRecords: 2, TornTail: 1, BytesDropped: 37}
	if got := d.String(); got != "2 corrupt record span(s), torn tail, 37 byte(s) dropped" {
		t.Errorf("String() = %q", got)
	}
	var sum DropStats
	sum.Add(d)
	sum.Add(DropStats{CorruptRecords: 1, BytesDropped: 5})
	if want := (DropStats{CorruptRecords: 3, TornTail: 1, BytesDropped: 42}); sum != want {
		t.Errorf("Add: %+v, want %+v", sum, want)
	}
}
