package trace

import "fmt"

// Forward-pointer analysis for §4.2 of the paper: the dynamic
// threatening boundary collector must remember ALL forward-in-time
// pointers (stores where the source object is older than the new
// referent), not just generation-crossing ones, and the design rests
// on the assumption that "such pointers are a small fraction of all
// pointers". ForwardStats measures that fraction on a real trace.

// ForwardStats summarizes the pointer stores of a trace.
type ForwardStats struct {
	Stores   int // total pointer stores
	NilStore int // stores of the nil reference
	Forward  int // source older than referent (must be remembered)
	Backward int // source younger than referent
	SelfSame int // source and referent allocated at the same instant
}

// ForwardFraction returns Forward / non-nil stores (0 when there were
// none).
func (f ForwardStats) ForwardFraction() float64 {
	n := f.Stores - f.NilStore
	if n == 0 {
		return 0
	}
	return float64(f.Forward) / float64(n)
}

// MeasureForward computes forward-pointer statistics for a well-formed
// trace. Object age is position in allocation order (the allocation
// clock), matching the collector's notion of birth time.
func MeasureForward(events []Event) (ForwardStats, error) {
	var fs ForwardStats
	birth := make(map[ObjectID]int)
	seq := 0
	for i, e := range events {
		switch e.Kind {
		case KindAlloc:
			seq++
			birth[e.ID] = seq
		case KindFree:
			delete(birth, e.ID)
		case KindPtrWrite:
			fs.Stores++
			if e.Target == NilObject {
				fs.NilStore++
				continue
			}
			bs, ok1 := birth[e.ID]
			bt, ok2 := birth[e.Target]
			if !ok1 || !ok2 {
				return fs, fmtErr(i, e)
			}
			switch {
			case bs < bt:
				fs.Forward++
			case bs > bt:
				fs.Backward++
			default:
				fs.SelfSame++
			}
		case KindMark:
			// Annotations carry no pointers.
		default:
			return fs, fmt.Errorf("trace: event %d: unknown kind %d", i, e.Kind)
		}
	}
	return fs, nil
}

func fmtErr(i int, e Event) error {
	return &forwardError{index: i, event: e}
}

type forwardError struct {
	index int
	event Event
}

func (e *forwardError) Error() string {
	return "trace: pointer store " + e.event.String() + " references a dead object (event index unknown to oracle)"
}
