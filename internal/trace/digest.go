package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

// Digest is the content identity of a trace: SHA-256 over its
// canonical binary encoding. The binary codec is deterministic —
// uvarint encodings are unique per value and timestamps are
// delta-encoded from a fixed origin — so re-encoding decoded events
// reproduces the original bytes and every route to the same event
// sequence yields the same digest. That makes Digest a safe cache
// key: it names what a trace says, not where it came from.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports an unset digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// ParseDigest parses the hex form produced by String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(d) {
		return Digest{}, fmt.Errorf("trace: bad digest %q: want %d hex bytes", s, len(d))
	}
	copy(d[:], b)
	return d, nil
}

// DigestEvents computes the digest of an in-memory event sequence by
// re-encoding it through the canonical binary Writer into the hash —
// no trace file or intermediate buffer involved.
func DigestEvents(events []Event) (Digest, error) {
	h := sha256.New()
	if err := WriteAll(h, events); err != nil {
		return Digest{}, err
	}
	return sumDigest(h), nil
}

// DigestingReader is an io.Reader that hashes every byte passing
// through it. Wrap a trace stream with it, decode through NewReader
// as usual, and after the decoder drains the stream to a clean EOF,
// Sum is the trace's content digest — computed in the same streaming
// pass as the decode, with no second read of the input.
type DigestingReader struct {
	r io.Reader
	h hash.Hash
}

// NewDigestingReader wraps r.
func NewDigestingReader(r io.Reader) *DigestingReader {
	return &DigestingReader{r: r, h: sha256.New()}
}

// Read implements io.Reader, folding everything it returns into the
// running hash.
func (dr *DigestingReader) Read(p []byte) (int, error) {
	n, err := dr.r.Read(p)
	if n > 0 {
		//dtbvet:ignore errsink -- hash.Hash.Write is documented to never return an error
		dr.h.Write(p[:n])
	}
	return n, err
}

// Sum returns the digest of the bytes read so far. It names the whole
// trace only once the decoder has consumed the stream to a clean EOF;
// after a decode error or an abandoned read it covers a prefix and
// must not be used as a content key.
func (dr *DigestingReader) Sum() Digest {
	return sumDigest(dr.h)
}

func sumDigest(h hash.Hash) Digest {
	var d Digest
	h.Sum(d[:0])
	return d
}
