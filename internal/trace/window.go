package trace

import (
	"fmt"
	"sort"
)

// Window extracts the sub-trace covering the instruction interval
// [from, to] as a self-contained, well-formed trace:
//
//   - objects allocated before the window and still live at its start
//     are re-introduced with synthetic allocations at instant `from`,
//     in their original allocation order (so relative ages — the only
//     thing boundary policies consume — are preserved);
//   - events inside the window are kept, except pointer stores that
//     reference objects absent from the window;
//   - frees of objects that died before the window are dropped.
//
// Windowing lets long captures be studied piecewise: the warm-up of a
// trace can be skipped, or one program phase isolated, while the
// result still passes Validate.
func Window(events []Event, from, to uint64) ([]Event, error) {
	if to < from {
		return nil, fmt.Errorf("trace: Window with to < from")
	}

	// Pass 1: liveness at the window start.
	type preObj struct {
		id    ObjectID
		size  uint64
		order int
	}
	pre := make(map[ObjectID]preObj)
	order := 0
	i := 0
	for ; i < len(events) && events[i].Instr < from; i++ {
		e := events[i]
		switch e.Kind {
		case KindAlloc:
			pre[e.ID] = preObj{id: e.ID, size: e.Size, order: order}
			order++
		case KindFree:
			if _, ok := pre[e.ID]; !ok {
				return nil, fmt.Errorf("trace: event %d frees unknown object %d", i, e.ID)
			}
			delete(pre, e.ID)
		case KindPtrWrite, KindMark:
			// Neither affects pre-window liveness.
		default:
			return nil, fmt.Errorf("trace: event %d: unknown kind %d", i, e.Kind)
		}
	}

	// Synthetic allocations for the survivors, oldest first.
	survivors := make([]preObj, 0, len(pre))
	for _, o := range pre { //dtbvet:ignore determinism -- survivors are sorted by allocation order below
		survivors = append(survivors, o)
	}
	sort.Slice(survivors, func(a, b int) bool { return survivors[a].order < survivors[b].order })

	out := make([]Event, 0, len(survivors)+len(events)-i)
	inWindow := make(map[ObjectID]bool, len(survivors))
	for _, o := range survivors {
		out = append(out, Alloc(o.id, o.size, from))
		inWindow[o.id] = true
	}

	// Pass 2: the window body.
	for ; i < len(events) && events[i].Instr <= to; i++ {
		e := events[i]
		switch e.Kind {
		case KindAlloc:
			inWindow[e.ID] = true
			out = append(out, e)
		case KindFree:
			if inWindow[e.ID] {
				out = append(out, e)
			}
		case KindPtrWrite:
			if inWindow[e.ID] && (e.Target == NilObject || inWindow[e.Target]) {
				out = append(out, e)
			}
		case KindMark:
			out = append(out, e)
		}
	}
	return out, nil
}
