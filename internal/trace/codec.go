package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format
//
//	header:  magic "DTBT" + version byte 0x01
//	event:   kind byte, then kind-specific uvarint fields:
//	         alloc:    id, size, dInstr
//	         free:     id, dInstr
//	         ptrwrite: id, field, target, dInstr
//	         mark:     len(label), label bytes, dInstr
//
// Instruction timestamps are delta-encoded (dInstr = instr - previous
// instr), which keeps long traces compact since most deltas are tiny.

var binaryMagic = []byte{'D', 'T', 'B', 'T', 0x01}

// ErrBadMagic reports a stream that is not a binary DTB trace.
var ErrBadMagic = errors.New("trace: bad magic, not a binary DTB trace")

// Writer encodes events to the binary format.
type Writer struct {
	w         *bufio.Writer
	buf       [binary.MaxVarintLen64]byte
	lastInstr uint64
	wroteHdr  bool
	n         int
}

// NewWriter returns a Writer emitting to w. The header is written
// lazily on the first event (or by Flush on an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() error {
	if w.wroteHdr {
		return nil
	}
	w.wroteHdr = true
	_, err := w.w.Write(binaryMagic)
	return err
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write encodes one event.
func (w *Writer) Write(e Event) error {
	if err := w.header(); err != nil {
		return err
	}
	if e.Instr < w.lastInstr {
		return fmt.Errorf("trace: Writer clock regressed %d -> %d", w.lastInstr, e.Instr)
	}
	d := e.Instr - w.lastInstr
	w.lastInstr = e.Instr
	if err := w.w.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	switch e.Kind {
	case KindAlloc:
		if err := w.uvarint(uint64(e.ID)); err != nil {
			return err
		}
		if err := w.uvarint(e.Size); err != nil {
			return err
		}
	case KindFree:
		if err := w.uvarint(uint64(e.ID)); err != nil {
			return err
		}
	case KindPtrWrite:
		if err := w.uvarint(uint64(e.ID)); err != nil {
			return err
		}
		if err := w.uvarint(uint64(e.Field)); err != nil {
			return err
		}
		if err := w.uvarint(uint64(e.Target)); err != nil {
			return err
		}
	case KindMark:
		if err := w.uvarint(uint64(len(e.Label))); err != nil {
			return err
		}
		if _, err := w.w.WriteString(e.Label); err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: cannot encode unknown kind %d", e.Kind)
	}
	w.n++
	return w.uvarint(d)
}

// Count returns the number of events written so far.
func (w *Writer) Count() int { return w.n }

// Flush writes any buffered data (and the header, if no event was
// ever written) to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes events from the binary format.
type Reader struct {
	r         *bufio.Reader
	readHdr   bool
	lastInstr uint64
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) checkHeader() error {
	if r.readHdr {
		return nil
	}
	r.readHdr = true
	hdr := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: truncated header", ErrBadMagic)
		}
		return err
	}
	for i, b := range binaryMagic {
		if hdr[i] != b {
			return ErrBadMagic
		}
	}
	return nil
}

// Read decodes the next event. It returns io.EOF at a clean end of
// stream.
func (r *Reader) Read() (Event, error) {
	if err := r.checkHeader(); err != nil {
		return Event{}, err
	}
	kb, err := r.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF here is the clean end
	}
	e := Event{Kind: Kind(kb)}
	switch e.Kind {
	case KindAlloc:
		id, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		size, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		e.ID, e.Size = ObjectID(id), size
	case KindFree:
		id, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		e.ID = ObjectID(id)
	case KindPtrWrite:
		id, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		field, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		target, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		e.ID, e.Field, e.Target = ObjectID(id), uint32(field), ObjectID(target)
	case KindMark:
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		const maxLabel = 1 << 20
		if n > maxLabel {
			return Event{}, fmt.Errorf("trace: mark label length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.r, buf); err != nil {
			return Event{}, unexpectedEOF(err)
		}
		e.Label = string(buf)
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind byte %d", kb)
	}
	d, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	r.lastInstr += d
	e.Instr = r.lastInstr
	return e, nil
}

// ReadBatch decodes up to len(dst) events into dst and returns how
// many it filled. A short count with a nil error means the stream
// ended cleanly mid-batch; the next call returns (0, io.EOF). On a
// decode error the events before the failure are returned alongside
// it. One ReadBatch call amortizes the per-event decoder-call overhead
// of a replay loop across the whole batch, which is why the batched
// replay engine feeds from it.
//
//dtbvet:hotpath one call per replay batch, decoding the whole frame
func (r *Reader) ReadBatch(dst []Event) (int, error) {
	n := 0
	for n < len(dst) {
		e, err := r.Read()
		if err == io.EOF {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if err != nil {
			return n, err
		}
		dst[n] = e
		n++
	}
	return n, nil
}

// ReadAll decodes the remainder of the stream.
func (r *Reader) ReadAll() ([]Event, error) {
	var events []Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteAll encodes a whole trace to w in the binary format.
func WriteAll(w io.Writer, events []Event) error {
	tw := NewWriter(w)
	for i, e := range events {
		if err := tw.Write(e); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return tw.Flush()
}

// Text format: one event per line using Event.String mnemonics, with
// '#' comments and blank lines ignored. Intended for hand-written test
// fixtures and human inspection of small traces.

// WriteText encodes a trace in the line-oriented text format.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the line-oriented text format.
func ReadText(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseTextLine(line)
		if err != nil {
			return events, fmt.Errorf("line %d: %w", lineno, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	return events, nil
}

func parseTextLine(line string) (Event, error) {
	fields := strings.Fields(line)
	u := func(i int) (uint64, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("missing field %d in %q", i, line)
		}
		return strconv.ParseUint(fields[i], 10, 64)
	}
	switch fields[0] {
	case "a":
		id, err := u(1)
		if err != nil {
			return Event{}, err
		}
		size, err := u(2)
		if err != nil {
			return Event{}, err
		}
		instr, err := u(3)
		if err != nil {
			return Event{}, err
		}
		return Alloc(ObjectID(id), size, instr), nil
	case "f":
		id, err := u(1)
		if err != nil {
			return Event{}, err
		}
		instr, err := u(2)
		if err != nil {
			return Event{}, err
		}
		return Free(ObjectID(id), instr), nil
	case "p":
		src, err := u(1)
		if err != nil {
			return Event{}, err
		}
		field, err := u(2)
		if err != nil {
			return Event{}, err
		}
		dst, err := u(3)
		if err != nil {
			return Event{}, err
		}
		instr, err := u(4)
		if err != nil {
			return Event{}, err
		}
		return PtrWrite(ObjectID(src), uint32(field), ObjectID(dst), instr), nil
	case "m":
		// m "label" instr — label is a Go-quoted string.
		rest := strings.TrimSpace(strings.TrimPrefix(line, "m"))
		if !strings.HasPrefix(rest, `"`) {
			return Event{}, fmt.Errorf("mark label must be quoted in %q", line)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '"' && rest[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 {
			return Event{}, fmt.Errorf("unterminated mark label in %q", line)
		}
		label, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return Event{}, fmt.Errorf("bad mark label in %q: %v", line, err)
		}
		instr, err := strconv.ParseUint(strings.TrimSpace(rest[end+1:]), 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad mark timestamp in %q: %v", line, err)
		}
		return Mark(label, instr), nil
	default:
		return Event{}, fmt.Errorf("unknown event mnemonic %q", fields[0])
	}
}
