package dtbgc

// Integration tests across the full pipeline: the mini-applications
// run on the managed heap, their recorded traces drive the simulator,
// and the §4.2 forward-pointer assumption is measured on real object
// graphs.

import (
	"bytes"
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
	"github.com/dtbgc/dtbgc/internal/apps/circuit"
	"github.com/dtbgc/dtbgc/internal/apps/logicmin"
	"github.com/dtbgc/dtbgc/internal/apps/psint"
)

// appTraces runs each mini-application at a small configuration and
// returns its trace, cached across tests.
var appTraceCache map[string][]Event

func appTraces(t *testing.T) map[string][]Event {
	t.Helper()
	if appTraceCache != nil {
		return appTraceCache
	}
	out := make(map[string][]Event, 4)

	ghost, err := psint.RunDocument(psint.GenerateDocument(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	out["ghost"] = ghost.Events

	plas := make([]string, 6)
	for i := range plas {
		plas[i] = logicmin.GeneratePLA(8, 16, 3, uint64(i+1))
	}
	esp, err := logicmin.RunBatch(plas, 300)
	if err != nil {
		t.Fatal(err)
	}
	out["espresso"] = esp.Events

	sis, err := circuit.Run(circuit.GenerateBLIF(16, 250, 8, 7), 400)
	if err != nil {
		t.Fatal(err)
	}
	out["sis"] = sis.Events

	// 18-digit semiprime: enough continued-fraction churn for the
	// live-fraction shape to emerge.
	n := "998244359987710471"
	_, _, cfracEvents, err := cfrac.Factor(n, cfrac.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out["cfrac"] = cfracEvents

	appTraceCache = out
	return out
}

func TestAppTracesAreWellFormed(t *testing.T) {
	for name, events := range appTraces(t) {
		if err := ValidateTrace(events); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(events) < 1000 {
			t.Errorf("%s: only %d events", name, len(events))
		}
	}
}

func TestAppTracesDriveAllCollectors(t *testing.T) {
	policies := []Policy{
		FullPolicy(), FixedPolicy(1), FixedPolicy(4),
		MemoryPolicy(128 * 1024), FeedMedPolicy(8 * 1024), DtbFMPolicy(8 * 1024),
	}
	for name, events := range appTraces(t) {
		live, err := Simulate(events, SimOptions{LiveOracle: true})
		if err != nil {
			t.Fatalf("%s live: %v", name, err)
		}
		for _, p := range policies {
			res, err := Simulate(events, SimOptions{Policy: p, TriggerBytes: 64 * 1024})
			if err != nil {
				t.Fatalf("%s under %s: %v", name, p.Name(), err)
			}
			if res.MemMaxBytes < live.MemMaxBytes {
				t.Errorf("%s under %s: memory below live floor", name, p.Name())
			}
			if res.Collections == 0 && res.TotalAlloc > 64*1024 {
				t.Errorf("%s under %s: no collections on %d bytes", name, p.Name(), res.TotalAlloc)
			}
		}
	}
}

func TestAppCharacteristicsMatchPaperTable2Roles(t *testing.T) {
	// The paper's §6 observations about the programs themselves:
	// CFRAC retains very little (LIVE << NoGC), SIS retains a lot.
	traces := appTraces(t)

	liveFraction := func(events []Event) float64 {
		live, err := Simulate(events, SimOptions{LiveOracle: true})
		if err != nil {
			t.Fatal(err)
		}
		nogc, err := Simulate(events, SimOptions{NoGC: true})
		if err != nil {
			t.Fatal(err)
		}
		return live.MemMeanBytes / nogc.MemMeanBytes
	}
	cfracFrac := liveFraction(traces["cfrac"])
	sisFrac := liveFraction(traces["sis"])
	t.Logf("live/NoGC mean fraction: cfrac %.3f, sis %.3f", cfracFrac, sisFrac)
	if cfracFrac > 0.15 {
		t.Errorf("cfrac live fraction %.3f; should be small", cfracFrac)
	}
	if sisFrac < 0.30 {
		t.Errorf("sis live fraction %.3f; most of SIS's storage should stay live", sisFrac)
	}
	if sisFrac < 3*cfracFrac {
		t.Errorf("sis (%.3f) vs cfrac (%.3f): ordering too weak", sisFrac, cfracFrac)
	}
}

func TestForwardPointerFractionOnRealGraphs(t *testing.T) {
	// §4.2: the single remembered set stays small because forward-in-
	// time pointers are a minority of stores. Measure it on the apps
	// that build real object graphs (espresso's cubes are pure data —
	// no pointer slots — so it is excluded).
	for _, name := range []string{"ghost", "sis"} {
		events := appTraces(t)[name]
		fs, err := MeasureForwardPointers(events)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fs.Stores == 0 {
			t.Fatalf("%s: no pointer stores recorded", name)
		}
		frac := fs.ForwardFraction()
		t.Logf("%s: %d stores, %.1f%% forward-in-time", name, fs.Stores, frac*100)
		if frac > 0.75 {
			t.Errorf("%s: forward fraction %.2f too high for the §4.2 assumption", name, frac)
		}
	}
}

func TestAppTraceRoundTripThroughCodec(t *testing.T) {
	// End-to-end: app trace -> binary codec -> simulator gives
	// identical results to the in-memory path.
	events := appTraces(t)["espresso"]
	direct, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Simulate(decoded, SimOptions{Policy: FullPolicy(), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if direct.MemMeanBytes != replayed.MemMeanBytes ||
		direct.TracedTotalBytes != replayed.TracedTotalBytes ||
		direct.Collections != replayed.Collections {
		t.Fatal("codec round trip changed simulation results")
	}
}

func TestRunAppEvaluation(t *testing.T) {
	ev, err := RunAppEvaluation(AppEvalOptions{
		GhostPages:       6,
		EspressoProblems: 4,
		SisVectors:       200,
		CfracN:           "100160063", // 10007 * 10009, quick
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Runs) != 5 {
		t.Fatalf("%d app runs, want 5 (two GHOST inputs like the paper)", len(ev.Runs))
	}
	tab := ev.Table2()
	if len(tab.Rows) != 8 {
		t.Fatalf("app Table 2 has %d rows", len(tab.Rows))
	}
	for _, rs := range ev.Runs {
		full := rs.Results["Full"]
		if full.Collections == 0 {
			t.Errorf("%s: no collections", rs.Workload.Name)
		}
		// The fundamental orderings hold on real program traces too.
		if rs.Results["Live"].MemMeanBytes > full.MemMeanBytes+1 {
			t.Errorf("%s: Live above Full", rs.Workload.Name)
		}
		if rs.Results["Fixed1"].TracedTotalBytes > full.TracedTotalBytes {
			t.Errorf("%s: Fixed1 traced more than Full", rs.Workload.Name)
		}
	}
}
