package dtbgc

import (
	"context"
	"errors"
	"fmt"
)

// MemoryFloor locates the feasibility crossover of §6.1: the smallest
// DTBMEM budget (to within tolFrac, e.g. 0.02 for 2%) that the
// collector can actually hold on the given trace — max memory within
// budget plus one trigger interval (the collector only acts at
// scavenge points, so one interval of fresh allocation is inherent
// slack). Budgets below the oracle live maximum are infeasible for
// any collector; budgets at total allocation are trivially feasible.
//
// The search is bisection over that range, assuming feasibility is
// monotone in the budget — true for DTBMEM, whose boundary moves
// strictly older as the budget tightens (see the monotonicity property
// test in internal/core).
func MemoryFloor(events []Event, trigger uint64, tolFrac float64) (uint64, error) {
	return MemoryFloorContext(context.Background(), events, trigger, tolFrac)
}

// MemoryFloorContext is MemoryFloor under a context: each bisection
// probe is one replay-engine pass, and cancelling ctx aborts the
// in-flight probe at its next event boundary. The probes themselves
// are inherently sequential — every budget choice depends on the
// previous probe's outcome.
func MemoryFloorContext(ctx context.Context, events []Event, trigger uint64, tolFrac float64) (uint64, error) {
	if trigger == 0 {
		trigger = 1 << 20
	}
	if tolFrac <= 0 {
		tolFrac = 0.02
	}
	src := SliceSource(events)
	probe := func(opts SimOptions) (*Result, error) {
		results, err := ReplayAll(ctx, src, []SimOptions{opts})
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}
	live, err := probe(SimOptions{LiveOracle: true})
	if err != nil {
		return 0, err
	}
	if live.TotalAlloc == 0 {
		return 0, errors.New("dtbgc: empty trace")
	}

	feasible := func(budget uint64) (bool, error) {
		res, err := probe(SimOptions{
			Policy:       MemoryPolicy(budget),
			TriggerBytes: trigger,
		})
		if err != nil {
			return false, err
		}
		return res.MemMaxBytes <= float64(budget+trigger), nil
	}

	lo := uint64(live.LiveMaxBytes) // nothing below the live peak can work
	hi := live.TotalAlloc + trigger
	if ok, err := feasible(hi); err != nil {
		return 0, err
	} else if !ok {
		return 0, fmt.Errorf("dtbgc: even budget %d is infeasible; inconsistent trace", hi)
	}
	for float64(hi-lo) > tolFrac*float64(hi) {
		mid := lo + (hi-lo)/2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
