package dtbgc

import (
	"strings"
	"testing"
)

func TestShapeCheckPassesOnScaledEvaluation(t *testing.T) {
	ev := testEval(t)
	if errs := ev.ShapeCheck(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func TestShapeCheckDetectsViolations(t *testing.T) {
	ev := testEval(t)
	// Sabotage a copy of one run: make Full look worse than Fixed1.
	sab := &Evaluation{Options: ev.Options}
	for _, rs := range ev.Runs {
		cp := RunSet{Workload: rs.Workload, Results: map[string]*Result{}}
		for k, v := range rs.Results {
			vc := *v
			cp.Results[k] = &vc
		}
		sab.Runs = append(sab.Runs, cp)
	}
	sab.Runs[0].Results["Full"].MemMaxBytes = 1e12
	sab.Runs[0].Results["Live"].MemMeanBytes = 1e12
	errs := sab.ShapeCheck()
	if len(errs) == 0 {
		t.Fatal("sabotaged evaluation passed the shape check")
	}
}

func TestCompareTables(t *testing.T) {
	ev := testEval(t)
	for _, n := range []int{2, 3, 4} {
		tab, err := ev.CompareTable(n)
		if err != nil {
			t.Fatal(err)
		}
		s := tab.String()
		if !strings.Contains(s, "(") {
			t.Fatalf("comparison table %d lacks paper values:\n%s", n, s)
		}
		// Spot-check one published number appears: Full GHOST(1).
		switch n {
		case 2:
			if !strings.Contains(s, "(1262/2065)") {
				t.Errorf("table 2 missing the paper's Full GHOST(1) cell:\n%s", s)
			}
		case 3:
			if !strings.Contains(s, "(1743/2130)") {
				t.Errorf("table 3 missing the paper's Full GHOST(1) cell")
			}
		case 4:
			if !strings.Contains(s, "(40153/179)") {
				t.Errorf("table 4 missing the paper's Full GHOST(1) cell")
			}
		}
	}
	if _, err := ev.CompareTable(9); err == nil {
		t.Fatal("CompareTable(9) accepted")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, tab := range []map[string]map[string]PaperCell{PaperTable2, PaperTable3, PaperTable4} {
		for collector, row := range tab {
			for _, w := range paperWorkloads {
				cell, ok := row[w]
				if !ok {
					t.Errorf("%s missing workload %s", collector, w)
					continue
				}
				if cell.A <= 0 || cell.B <= 0 {
					t.Errorf("%s/%s has non-positive values", collector, w)
				}
			}
		}
	}
	if len(PaperTable2) != 8 || len(PaperTable3) != 6 || len(PaperTable4) != 6 {
		t.Fatal("paper tables have wrong row counts")
	}
}
