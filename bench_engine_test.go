package dtbgc

// Replay-engine benchmarks: the single-pass fan-out against the
// legacy materialize-then-replay-per-collector shape it replaced.
// Besides the standard ns/op and allocs/op, each benchmark verifies
// the pass-count contract (the fan-out generates the trace exactly
// once per iteration) and, when BENCH_ENGINE_JSON names a file, the
// measurements are snapshotted there as JSON for CI to archive.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// engineBenchWorkload and engineBenchMatrix mirror benchOptions: the
// same reduced-scale workload under the full eight-collector matrix.
func engineBenchWorkload() Workload { return WorkloadByName("GHOST(1)").Scale(0.05) }

func engineBenchMatrix() []SimOptions {
	return collectorMatrix("GHOST(1)", 51*1024, 150*1024, 10*1024, false, 0, nil)
}

// engineBenchMatrix64 is the scaling point: eight copies of the
// eight-collector matrix at slightly different triggers (so the runs
// do distinct work and nothing can be coalesced), 64 collectors total
// sharing one trace pass.
func engineBenchMatrix64() []SimOptions {
	var sims []SimOptions
	for i := 0; i < 8; i++ {
		trigger := uint64(51*1024 + i*2048)
		sims = append(sims, collectorMatrix(fmt.Sprintf("GHOST(1)#%d", i), trigger, 150*1024, 10*1024, false, 0, nil)...)
	}
	return sims
}

// engineBenchSnapshot is one BENCH_replay.json record.
type engineBenchSnapshot struct {
	Name                string  `json:"name"`
	Collectors          int     `json:"collectors"`
	Iters               int     `json:"iters"`
	NsPerOp             float64 `json:"ns_per_op"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	BytesPerOp          float64 `json:"bytes_per_op"`
	GeneratePassesPerOp float64 `json:"generate_passes_per_op"`
	// RetainedBytes is set only by the retained-memory benchmarks:
	// process heap still reachable at RunFinish, fleet and shared tape
	// included, after a forced GC. CI gates on it — a long churn replay
	// must not retain proportionally to trace length.
	RetainedBytes float64 `json:"retained_bytes,omitempty"`
}

var (
	engineBenchMu      sync.Mutex
	engineBenchResults []engineBenchSnapshot
)

// recordEngineBench records a snapshot and rewrites the JSON file (if
// requested via BENCH_ENGINE_JSON) so the archive is complete no
// matter which benchmark ran last. The testing package runs each
// benchmark more than once while it calibrates b.N (and -benchtime Nx
// still starts with a one-iteration probe), so a later snapshot for
// the same name replaces the earlier one: the file keeps exactly one
// entry per benchmark, from its final, highest-iteration run, with
// the iters field reporting that run honestly.
func recordEngineBench(b *testing.B, s engineBenchSnapshot) {
	b.Helper()
	engineBenchMu.Lock()
	defer engineBenchMu.Unlock()
	replaced := false
	for i := range engineBenchResults {
		if engineBenchResults[i].Name == s.Name {
			engineBenchResults[i] = s
			replaced = true
			break
		}
	}
	if !replaced {
		engineBenchResults = append(engineBenchResults, s)
	}
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		return
	}
	out, err := json.MarshalIndent(struct {
		Benchmarks []engineBenchSnapshot `json:"benchmarks"`
	}{engineBenchResults}, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench snapshot: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// memStatsDelta captures allocation counters around the timed loop so
// the JSON snapshot carries the same numbers -benchmem prints.
type memStatsDelta struct{ mallocs, bytes uint64 }

func startMemStats() memStatsDelta {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return memStatsDelta{m.Mallocs, m.TotalAlloc}
}

func (d memStatsDelta) stop() memStatsDelta {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return memStatsDelta{m.Mallocs - d.mallocs, m.TotalAlloc - d.bytes}
}

// benchReplayFanOut is the engine path: one streaming generate pass
// fanned out to every runner in sims, no materialized trace. The
// pass-count assertion is the benchmark's correctness teeth: exactly
// one generate per iteration regardless of collector count.
func benchReplayFanOut(b *testing.B, name string, sims []SimOptions) {
	w := engineBenchWorkload()
	passes := 0
	src := EventSource(func(emit func(Event) error) error {
		passes++
		return w.GenerateTo(emit)
	})
	b.ReportAllocs()
	b.ResetTimer()
	mem := startMemStats()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAll(context.Background(), src, sims); err != nil {
			b.Fatal(err)
		}
	}
	d := mem.stop()
	b.StopTimer()
	if passes != b.N {
		b.Fatalf("fan-out ran %d generate passes over %d iterations, want exactly one per iteration", passes, b.N)
	}
	b.ReportMetric(float64(passes)/float64(b.N), "generate-passes/op")
	recordEngineBench(b, engineBenchSnapshot{
		Name:                name,
		Collectors:          len(sims),
		Iters:               b.N,
		NsPerOp:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:         float64(d.mallocs) / float64(b.N),
		BytesPerOp:          float64(d.bytes) / float64(b.N),
		GeneratePassesPerOp: float64(passes) / float64(b.N),
	})
}

// benchReplayLegacy is the pre-engine shape kept as the comparison
// baseline: materialize the trace once, then run each collector in
// its own full replay over the slice.
func benchReplayLegacy(b *testing.B, name string, sims []SimOptions) {
	w := engineBenchWorkload()
	passes := 0
	b.ReportAllocs()
	b.ResetTimer()
	mem := startMemStats()
	for i := 0; i < b.N; i++ {
		passes++
		events, err := w.Generate()
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range sims {
			if _, err := Simulate(events, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	d := mem.stop()
	b.StopTimer()
	recordEngineBench(b, engineBenchSnapshot{
		Name:                name,
		Collectors:          len(sims),
		Iters:               b.N,
		NsPerOp:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:         float64(d.mallocs) / float64(b.N),
		BytesPerOp:          float64(d.bytes) / float64(b.N),
		GeneratePassesPerOp: float64(passes) / float64(b.N),
	})
}

func BenchmarkReplaySinglePassFanOut(b *testing.B) {
	benchReplayFanOut(b, "ReplaySinglePassFanOut", engineBenchMatrix())
}

func BenchmarkReplayLegacyPerCollector(b *testing.B) {
	benchReplayLegacy(b, "ReplayLegacyPerCollector", engineBenchMatrix())
}

func BenchmarkReplaySinglePassFanOut64(b *testing.B) {
	benchReplayFanOut(b, "ReplaySinglePassFanOut64", engineBenchMatrix64())
}

func BenchmarkReplayLegacyPerCollector64(b *testing.B) {
	benchReplayLegacy(b, "ReplayLegacyPerCollector64", engineBenchMatrix64())
}

// The retained-memory benchmarks pin the tape's O(live + one epoch)
// bound: pure churn streamed straight from a generator (never
// materialized), so the shared tape is the only per-object state the
// replay could hold. The long trace allocates 10x the short one over
// the same live window; with epoch compaction their retained heaps
// must come out about equal, and the CI bench-smoke gate enforces it.
const (
	retainedObjSize = 256  // bytes per churn object
	retainedHold    = 2048 // live window: objects held before free
)

// retainedChurnSource streams n-object churn without materializing a
// trace: object i dies as object i+retainedHold is born, so peak live
// stays at retainedHold*retainedObjSize no matter how long the trace.
func retainedChurnSource(n int) EventSource {
	return func(emit func(Event) error) error {
		instr := uint64(0)
		for i := 1; i <= n; i++ {
			instr += 100
			if err := emit(trace.Alloc(trace.ObjectID(i), retainedObjSize, instr)); err != nil {
				return err
			}
			if i > retainedHold {
				if err := emit(trace.Free(trace.ObjectID(i-retainedHold), instr)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// retainedBenchMatrix holds only collectors whose heaps drain, so the
// runner floors advance and ordinal retirement actually fires; a
// tenuring collector (FIXED, tight-budget DTBFM) would pin the floor
// and the benchmark would measure its heap, not the tape.
func retainedBenchMatrix() []SimOptions {
	return []SimOptions{
		{Policy: FullPolicy(), TriggerBytes: 64 * 1024, Label: "retained/FULL"},
		{Policy: FeedMedPolicy(1 << 20), TriggerBytes: 64 * 1024, Label: "retained/FEEDMED"},
		{NoGC: true, Label: "retained/NoGC"},
		{LiveOracle: true, Label: "retained/Live"},
	}
}

// heapRetainedProbe measures process-heap retention at the moment the
// replay finishes, while the fleet — and the shared tape — is still
// reachable: a forced GC plus HeapAlloc delta against the armed
// baseline, taken at the first RunFinish.
type heapRetainedProbe struct {
	base     uint64
	retained uint64
	armed    bool
}

func (p *heapRetainedProbe) arm() {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	p.base = m.HeapAlloc
	p.armed = true
}

func (p *heapRetainedProbe) RunStart(RunStart)      {}
func (p *heapRetainedProbe) Decision(Decision)      {}
func (p *heapRetainedProbe) Scavenge(ScavengeEvent) {}
func (p *heapRetainedProbe) Progress(Progress)      {}

func (p *heapRetainedProbe) RunFinish(RunFinish) {
	if !p.armed {
		return
	}
	p.armed = false
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	p.retained = 0
	if m.HeapAlloc > p.base {
		p.retained = m.HeapAlloc - p.base
	}
}

func benchReplayRetained(b *testing.B, name string, objects int) {
	peakLive := uint64(retainedObjSize * retainedHold)
	if total := uint64(objects) * retainedObjSize; total < 10*peakLive {
		b.Fatalf("trace allocates %d bytes, want >= 10x the %d-byte live window to exercise compaction", total, peakLive)
	}
	probe := &heapRetainedProbe{}
	sims := retainedBenchMatrix()
	sims[0].Probe = probe
	src := retainedChurnSource(objects)
	b.ReportAllocs()
	b.ResetTimer()
	mem := startMemStats()
	for i := 0; i < b.N; i++ {
		probe.arm()
		if _, err := ReplayAll(context.Background(), src, sims); err != nil {
			b.Fatal(err)
		}
	}
	d := mem.stop()
	b.StopTimer()
	if probe.retained == 0 {
		b.Fatal("retained-heap probe never fired")
	}
	b.ReportMetric(float64(probe.retained), "retained-bytes")
	recordEngineBench(b, engineBenchSnapshot{
		Name:          name,
		Collectors:    len(sims),
		Iters:         b.N,
		NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:   float64(d.mallocs) / float64(b.N),
		BytesPerOp:    float64(d.bytes) / float64(b.N),
		RetainedBytes: float64(probe.retained),
	})
}

func BenchmarkReplayRetainedShortTrace(b *testing.B) {
	benchReplayRetained(b, "ReplayRetainedShortTrace", 40000)
}

func BenchmarkReplayRetainedLongTrace(b *testing.B) {
	benchReplayRetained(b, "ReplayRetainedLongTrace", 400000)
}

// BenchmarkEvalFullMatrix measures the whole evaluation front door —
// streaming generation, fan-out, and the bounded worker pool across
// all six workloads — at the shared bench scale.
func BenchmarkEvalFullMatrix(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	mem := startMemStats()
	for i := 0; i < b.N; i++ {
		ev, err := RunPaperEvaluationContext(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(ev.Runs) != 6 {
			b.Fatalf("evaluation covered %d workloads, want 6", len(ev.Runs))
		}
	}
	d := mem.stop()
	b.StopTimer()
	recordEngineBench(b, engineBenchSnapshot{
		Name:        "EvalFullMatrix",
		Collectors:  8,
		Iters:       b.N,
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp: float64(d.mallocs) / float64(b.N),
		BytesPerOp:  float64(d.bytes) / float64(b.N),
	})
}
