package dtbgc

import (
	"context"
	"io"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/tournament"
)

// AdaptivePolicy is a Policy family whose members learn: rather than
// computing the threatening boundary as a pure function, an adaptive
// policy mints a fresh PolicyInstance per run which carries online
// state — bandit arm statistics, gradient weights — updated after
// every scavenge. The policy value itself stays immutable
// configuration, so one AdaptivePolicy can drive many concurrent runs.
type AdaptivePolicy = core.AdaptivePolicy

// PolicyInstance is one run's worth of adaptive policy state. Its
// learning is deterministic given the instance seed, and Snapshot/
// Restore round-trip the state exactly, which is how checkpointed
// replays resume bit-identically.
type PolicyInstance = core.PolicyInstance

// EpsGreedyPolicy returns an adaptive ε-greedy bandit over a grid of
// candidate boundary fractions: with probability eps it explores a
// random arm, otherwise it exploits the best observed mean reward
// (negative tracing-plus-tenured-garbage cost). eps in [0, 1].
func EpsGreedyPolicy(eps float64) Policy { return core.Bandit{Eps: eps} }

// UCBPolicy returns an adaptive UCB1 bandit over the same candidate
// grid, with exploration coefficient c > 0.
func UCBPolicy(c float64) Policy { return core.Bandit{UCB: c} }

// GradientPolicy returns the adaptive online-gradient controller: the
// boundary is a learned logistic function of scavenge features,
// updated after every collection. The zero value takes the stock
// learning rate and trace budget.
func GradientPolicy() Policy { return core.Gradient{} }

// TournamentOptions parameterizes RunTournament; the zero value runs
// the default roster over the paper corpus with an 8-seed sweep.
type TournamentOptions = tournament.Options

// TournamentResult is a complete tournament report: paired cells,
// leaderboard standings, FDR-adjusted pairwise comparisons, and the
// workloads where an adaptive policy beat every stock policy.
type TournamentResult = tournament.Result

// RunTournament runs the policy tournament: every roster policy over
// every workload and sweep seed, fully paired (one shared trace per
// cell), ranked by composite memory/CPU cost with paired permutation
// significance. Deterministic: the same options reproduce the same
// report bit-for-bit.
func RunTournament(ctx context.Context, opts TournamentOptions) (*TournamentResult, error) {
	return tournament.Run(ctx, opts)
}

// DefaultTournamentRoster returns the standard tournament entrants as
// ParsePolicy specs: the paper's Table-1 policies plus the adaptive
// bandit and gradient controllers.
func DefaultTournamentRoster() []string { return tournament.DefaultRoster() }

// WriteTournamentMarkdown renders a tournament report as markdown.
func WriteTournamentMarkdown(w io.Writer, res *TournamentResult) error {
	return res.WriteMarkdown(w)
}
