package dtbgc

import (
	"fmt"
	"strings"
	"testing"
)

// The facade keeps exactly one panicking lookup (WorkloadByName, for
// compile-time-constant names); its panic must identify the bad input
// and point at the error-returning alternative, so the recovery from a
// misuse is obvious from the crash alone.
func TestWorkloadByNamePanicNamesTheAlternative(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("WorkloadByName on an unknown name did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, `"GHOST(3)"`) {
			t.Errorf("panic %q does not name the bad input", msg)
		}
		if !strings.Contains(msg, "LookupWorkload") {
			t.Errorf("panic %q does not point at LookupWorkload", msg)
		}
	}()
	WorkloadByName("GHOST(3)")
}
