package dtbgc

// The published numbers of Barrett & Zorn's Tables 2-4, kept as data
// so comparison output and automated shape checks can reference them.
// Units: Table 2 kilobytes, Table 3 milliseconds, Table 4 kilobytes
// and percent.

// PaperCell is one collector×workload entry of a published table.
type PaperCell struct {
	A, B float64 // mean/max, p50/p90, or traced/overhead
}

// paperWorkloads is the column order of the published tables.
var paperWorkloads = []string{"GHOST(1)", "GHOST(2)", "ESPRESSO(1)", "ESPRESSO(2)", "SIS", "CFRAC"}

// PaperTable2 is "Mean and Maximum Memory Allocated (Kilobytes)".
var PaperTable2 = map[string]map[string]PaperCell{
	"Full":    {"GHOST(1)": {1262, 2065}, "GHOST(2)": {1807, 3033}, "ESPRESSO(1)": {564, 1076}, "ESPRESSO(2)": {640, 1188}, "SIS": {4524, 6980}, "CFRAC": {497, 992}},
	"Fixed1":  {"GHOST(1)": {1465, 2453}, "GHOST(2)": {2130, 3632}, "ESPRESSO(1)": {667, 1226}, "ESPRESSO(2)": {1577, 2837}, "SIS": {4691, 7166}, "CFRAC": {498, 993}},
	"Fixed4":  {"GHOST(1)": {1262, 2065}, "GHOST(2)": {1807, 3033}, "ESPRESSO(1)": {567, 1088}, "ESPRESSO(2)": {760, 1372}, "SIS": {4524, 6980}, "CFRAC": {497, 992}},
	"DtbMem":  {"GHOST(1)": {1460, 2393}, "GHOST(2)": {1984, 3242}, "ESPRESSO(1)": {667, 1226}, "ESPRESSO(2)": {1481, 2365}, "SIS": {4552, 6980}, "CFRAC": {498, 993}},
	"FeedMed": {"GHOST(1)": {1316, 2125}, "GHOST(2)": {1891, 3168}, "ESPRESSO(1)": {620, 1137}, "ESPRESSO(2)": {1095, 1748}, "SIS": {4691, 7166}, "CFRAC": {497, 992}},
	"DtbFM":   {"GHOST(1)": {1265, 2066}, "GHOST(2)": {1839, 3078}, "ESPRESSO(1)": {569, 1111}, "ESPRESSO(2)": {695, 1612}, "SIS": {4691, 7166}, "CFRAC": {497, 992}},
	"NoGC":    {"GHOST(1)": {24601, 49004}, "GHOST(2)": {44243, 87681}, "ESPRESSO(1)": {7874, 14852}, "ESPRESSO(2)": {45428, 104338}, "SIS": {8346, 14542}, "CFRAC": {3853, 7813}},
	"Live":    {"GHOST(1)": {777, 1118}, "GHOST(2)": {1323, 2080}, "ESPRESSO(1)": {89, 173}, "ESPRESSO(2)": {160, 269}, "SIS": {4197, 6423}, "CFRAC": {10, 21}},
}

// PaperTable3 is "Median and 90th Percentile Pause Times (ms)".
var PaperTable3 = map[string]map[string]PaperCell{
	"Full":    {"GHOST(1)": {1743, 2130}, "GHOST(2)": {2720, 4108}, "ESPRESSO(1)": {164, 197}, "ESPRESSO(2)": {333, 387}, "SIS": {8165, 11787}, "CFRAC": {15, 37}},
	"Fixed1":  {"GHOST(1)": {31, 102}, "GHOST(2)": {27, 139}, "ESPRESSO(1)": {12, 111}, "ESPRESSO(2)": {18, 68}, "SIS": {726, 1609}, "CFRAC": {5, 7}},
	"Fixed4":  {"GHOST(1)": {120, 334}, "GHOST(2)": {150, 409}, "ESPRESSO(1)": {20, 192}, "ESPRESSO(2)": {28, 137}, "SIS": {2901, 4545}, "CFRAC": {15, 22}},
	"DtbMem":  {"GHOST(1)": {34, 112}, "GHOST(2)": {200, 1345}, "ESPRESSO(1)": {12, 111}, "ESPRESSO(2)": {19, 68}, "SIS": {8165, 11787}, "CFRAC": {5, 7}},
	"FeedMed": {"GHOST(1)": {104, 143}, "GHOST(2)": {90, 188}, "ESPRESSO(1)": {16, 111}, "ESPRESSO(2)": {40, 93}, "SIS": {726, 1609}, "CFRAC": {15, 37}},
	"DtbFM":   {"GHOST(1)": {106, 168}, "GHOST(2)": {97, 234}, "ESPRESSO(1)": {53, 178}, "ESPRESSO(2)": {93, 364}, "SIS": {726, 1609}, "CFRAC": {15, 37}},
}

// PaperTable4 is "Total Bytes Traced (KB) and Estimated CPU Overhead (%)".
var PaperTable4 = map[string]map[string]PaperCell{
	"Full":    {"GHOST(1)": {40153, 179.2}, "GHOST(2)": {119011, 203.7}, "ESPRESSO(1)": {1236, 4.1}, "ESPRESSO(2)": {16389, 14.0}, "SIS": {57015, 385.5}, "CFRAC": {73, 0.7}},
	"Fixed1":  {"GHOST(1)": {1373, 6.1}, "GHOST(2)": {2456, 4.2}, "ESPRESSO(1)": {209, 0.7}, "ESPRESSO(2)": {1615, 1.4}, "SIS": {6610, 44.7}, "CFRAC": {19, 0.2}},
	"Fixed4":  {"GHOST(1)": {4610, 20.5}, "GHOST(2)": {8590, 14.7}, "ESPRESSO(1)": {487, 1.6}, "ESPRESSO(2)": {2878, 2.5}, "SIS": {24001, 162.3}, "CFRAC": {57, 0.6}},
	"DtbMem":  {"GHOST(1)": {1489, 6.6}, "GHOST(2)": {23689, 40.5}, "ESPRESSO(1)": {209, 0.7}, "ESPRESSO(2)": {1662, 1.4}, "SIS": {50776, 343.3}, "CFRAC": {19, 0.2}},
	"FeedMed": {"GHOST(1)": {2641, 11.8}, "GHOST(2)": {4377, 7.5}, "ESPRESSO(1)": {231, 0.8}, "ESPRESSO(2)": {2642, 2.3}, "SIS": {6610, 44.7}, "CFRAC": {73, 0.7}},
	"DtbFM":   {"GHOST(1)": {3026, 13.5}, "GHOST(2)": {5585, 9.6}, "ESPRESSO(1)": {684, 2.3}, "ESPRESSO(2)": {8201, 7.0}, "SIS": {6610, 44.7}, "CFRAC": {73, 0.7}},
}
