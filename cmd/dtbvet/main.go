// Command dtbvet runs the project's static-analysis suite
// (internal/analysis) over the module: four analyzers enforcing the
// allocation-clock unit discipline, boundary-policy purity,
// simulation determinism, and trace-event-switch exhaustiveness —
// invariants the reproduction depends on but the Go compiler cannot
// see.
//
// Usage:
//
//	dtbvet ./...            # analyze the whole module (the CI gate)
//	dtbvet -list            # describe the analyzers
//	dtbvet -only determinism ./...
//
// Exit status is 0 when the module is clean, 1 when diagnostics were
// reported, 2 on a load or usage error. Intentional exceptions are
// annotated at the offending line with `//dtbvet:ignore <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/dtbgc/dtbgc/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "dtbvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	// The only supported target is the module containing the working
	// directory; "./..." (or no argument) means all of it.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "dtbvet: unsupported package pattern %q (dtbvet analyzes the whole module: use ./...)\n", arg)
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		rel := d
		if r, err := relTo(root, d.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dtbvet: %d problem(s) in %d package(s) analyzed\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func relTo(root, path string) (string, error) {
	return filepath.Rel(root, path)
}
