// Command dtbvet runs the project's static-analysis suite
// (internal/analysis) over the module: eight analyzers enforcing the
// allocation-clock unit discipline, boundary-policy purity,
// simulation determinism, trace-event-switch exhaustiveness, the
// cliio error-sink discipline (tests and examples included), float
// bit-exactness, the //dtbvet:hotpath allocation contract, and
// goroutine join/cancellation hygiene in the fan-out code — invariants
// the reproduction depends on but the Go compiler cannot see.
//
// Usage:
//
//	dtbvet ./...                  # analyze the whole module (the CI gate)
//	dtbvet -list                  # describe the analyzers
//	dtbvet -only errsink ./...    # run a subset
//	dtbvet -json ./...            # machine-readable report on stdout
//	dtbvet -selftest              # mutation check: every analyzer must fire on its fixture
//	dtbvet -writebaseline ./...   # re-record the accepted-findings baseline
//
// Findings are compared against the committed baseline
// (dtbvet_baseline.json at the module root, override with -baseline):
// new findings fail the build, and so do baseline entries that no
// longer fire — drift must be resolved by deleting the entry or
// deliberately re-recording.
//
// Exit status is 0 when the module is clean, 1 when diagnostics were
// reported, 2 on a load or usage error. Intentional exceptions are
// annotated at the offending line with a scoped, reasoned
// `//dtbvet:ignore <analyzer>[,analyzer...] -- <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/dtbgc/dtbgc/internal/analysis"
)

// defaultBaseline is the committed ledger of accepted findings,
// relative to the module root.
const defaultBaseline = "dtbvet_baseline.json"

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "write the findings as JSON on stdout")
	baselinePath := flag.String("baseline", "", "baseline file (default: <module>/"+defaultBaseline+")")
	writeBaseline := flag.Bool("writebaseline", false, "re-record the baseline from the current findings and exit")
	selftest := flag.Bool("selftest", false, "run the mutation self-test: every analyzer must fire on its fixture")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			scope := ""
			if a.Tests {
				scope = " [runs on tests]"
			}
			sev := a.Severity
			if sev == "" {
				sev = analysis.SeverityError
			}
			fmt.Printf("%-14s %-8s %s%s\n", a.Name, sev, a.Doc, scope)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}

	if *selftest {
		if err := analysis.SelfTest(root); err != nil {
			fmt.Fprintln(os.Stderr, "dtbvet:", err)
			os.Exit(1)
		}
		fmt.Println("dtbvet: selftest ok: every analyzer fires on its mutant fixture and stays silent on the clean corpus")
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "dtbvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	// The only supported target is the module containing the working
	// directory; "./..." (or no argument) means all of it.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "dtbvet: unsupported package pattern %q (dtbvet analyzes the whole module: use ./...)\n", arg)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModuleWithTests()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)

	path := *baselinePath
	if path == "" {
		path = filepath.Join(root, defaultBaseline)
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(path, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "dtbvet:", err)
			os.Exit(2)
		}
		fmt.Printf("dtbvet: recorded %d finding(s) in %s\n", len(diags), path)
		return
	}
	baseline, err := analysis.LoadBaseline(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbvet:", err)
		os.Exit(2)
	}
	diags = baseline.Apply(root, diags)

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "dtbvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			rel := d
			rel.Pos.Filename = analysis.RelPath(root, d.Pos.Filename)
			fmt.Println(rel)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dtbvet: %d problem(s) in %d package(s) analyzed\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
