// Command dtbsim runs one collector over one workload (or a recorded
// trace file) and prints its metrics — the single-cell view of the
// evaluation tables.
//
// Usage:
//
//	dtbsim -policy dtbfm:50k -workload "GHOST(1)" [-scale F] [-trigger BYTES]
//	dtbsim -policy dtbmem:3000k -trace events.dtbt
//	dtbsim -baseline live -workload CFRAC
//	dtbsim -policy dtbfm:50k -workload SIS -telemetry run.jsonl
//	dtbsim -policy full -workload "ESPRESSO(2)" -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The run is streamed through the replay engine: a generated workload
// is emitted event by event and a trace file is decoded event by
// event, so memory use is bounded by the simulated heap, not the
// trace length. Interrupting the process (Ctrl-C) cancels the replay
// at the next event boundary.
//
// -audit attaches the invariant auditor (internal/audit) to the run;
// any breach of the paper's per-scavenge identities is printed to
// stderr and fails the run with a non-zero exit. -telemetry streams
// per-scavenge JSON-lines telemetry (the schema is documented in the
// README's Observability section) to a file, or to stdout with "-".
// -cpuprofile and -memprofile write stock pprof
// profiles of the harness itself, so its hot spots are measurable
// with `go tool pprof`. Conflicting flags are rejected: -policy
// cannot be combined with -baseline, -workload with -trace, and
// -scale only applies to generated workloads.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	policySpec := flag.String("policy", "", "collector policy (full, fixed1, fixed4, feedmed:<b>, dtbfm:<b>, dtbmem:<b>)")
	baseline := flag.String("baseline", "", "baseline instead of a policy: nogc or live")
	workloadName := flag.String("workload", "", `paper workload name, e.g. "GHOST(1)", ESPRESSO(2), SIS, CFRAC`)
	traceFile := flag.String("trace", "", "binary trace file to replay instead of a workload")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	trigger := flag.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	history := flag.Bool("history", false, "print the per-scavenge history as CSV instead of the summary")
	opportunistic := flag.Bool("opportunistic", false, "also scavenge at trace marks (program quiescent points)")
	pageFrames := flag.Int("pages", 0, "enable the VM model with this many resident 4 KB pages")
	auditRun := flag.Bool("audit", false, "attach the invariant auditor; violations go to stderr and fail the run")
	telemetry := flag.String("telemetry", "", "write per-scavenge JSON-lines telemetry to FILE (- for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the run to FILE")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtbsim:", err)
		os.Exit(1)
	}

	// Conflicting flags are an error, not a silent preference: a
	// dropped -policy or -scale yields a plausible-looking result for
	// a run the user did not ask for.
	if *policySpec != "" && *baseline != "" {
		fail(fmt.Errorf("-policy %q conflicts with -baseline %q: a run is driven by one or the other", *policySpec, *baseline))
	}
	if *workloadName != "" && *traceFile != "" {
		fail(fmt.Errorf("-workload %q conflicts with -trace %q: choose one event source", *workloadName, *traceFile))
	}
	if *traceFile != "" && flagWasSet("scale") {
		fail(fmt.Errorf("-scale applies to generated workloads and cannot rescale the recorded trace %q", *traceFile))
	}

	opts := dtbgc.SimOptions{TriggerBytes: *trigger, Opportunistic: *opportunistic, PageFrames: *pageFrames}
	switch *baseline {
	case "":
		p, err := dtbgc.ParsePolicy(*policySpec)
		if err != nil {
			fail(err)
		}
		opts.Policy = p
	case "nogc":
		opts.NoGC = true
	case "live":
		opts.LiveOracle = true
	default:
		fail(fmt.Errorf("unknown baseline %q (nogc or live)", *baseline))
	}

	var src dtbgc.EventSource
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = dtbgc.StreamSource(f)
	case *workloadName != "":
		w, err := dtbgc.LookupWorkload(*workloadName)
		if err != nil {
			fail(err)
		}
		src = w.Scale(*scale).GenerateTo
	default:
		fail(fmt.Errorf("need -workload or -trace"))
	}

	var tw *dtbgc.TelemetryWriter
	if *telemetry != "" {
		dst := os.Stdout
		if *telemetry != "-" {
			f, err := os.Create(*telemetry)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			dst = f
		}
		tw = dtbgc.NewTelemetryWriter(dst)
	}
	var auditor *dtbgc.Auditor
	if *auditRun {
		auditor = dtbgc.NewAuditor()
	}
	if tw != nil || auditor != nil {
		// Append only the live probes: a typed-nil *TelemetryWriter
		// boxed into the Probe interface would not read as nil.
		var probes []dtbgc.Probe
		if tw != nil {
			probes = append(probes, tw)
		}
		if auditor != nil {
			probes = append(probes, auditor)
		}
		opts.Probe = dtbgc.CombineProbes(probes...)
		switch {
		case *workloadName != "":
			opts.Label = *workloadName
		default:
			opts.Label = *traceFile
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopCPUProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	results, err := dtbgc.ReplayAll(ctx, src, []dtbgc.SimOptions{opts})
	stopCPUProfile()
	if err != nil {
		fail(err)
	}
	res := results[0]

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			fail(fmt.Errorf("writing telemetry: %w", err))
		}
	}
	if auditor != nil {
		if vs := auditor.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, "dtbsim: audit:", v)
			}
			fail(fmt.Errorf("audit: %d invariant violation(s)", len(vs)))
		}
	}
	if *history {
		fmt.Print(dtbgc.HistoryCSV(res))
		return
	}
	fmt.Printf("collector:      %s\n", res.Collector)
	fmt.Printf("total alloc:    %.0f KB over %.1f s (model time)\n", float64(res.TotalAlloc)/1024, res.ExecSeconds)
	fmt.Printf("memory mean/max: %.0f / %.0f KB\n", res.MemMeanBytes/1024, res.MemMaxBytes/1024)
	fmt.Printf("live   mean/max: %.0f / %.0f KB\n", res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
	fmt.Printf("collections:    %d\n", res.Collections)
	if res.Collections > 0 {
		fmt.Printf("pauses p50/p90: %.0f / %.0f ms\n", res.MedianPauseSeconds()*1000, res.P90PauseSeconds()*1000)
		fmt.Printf("traced total:   %.0f KB (overhead %.1f%%)\n", float64(res.TracedTotalBytes)/1024, res.OverheadPct)
	}
	if res.PageAccesses > 0 {
		fmt.Printf("page faults:    %d of %d accesses (%.2f%%)\n",
			res.PageFaults, res.PageAccesses, 100*float64(res.PageFaults)/float64(res.PageAccesses))
	}
}

// flagWasSet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
