// Command dtbsim runs one collector over one workload (or a recorded
// trace file) and prints its metrics — the single-cell view of the
// evaluation tables.
//
// Usage:
//
//	dtbsim -policy dtbfm:50k -workload "GHOST(1)" [-scale F] [-trigger BYTES]
//	dtbsim -policy dtbmem:3000k -trace events.dtbt
//	dtbsim -baseline live -workload CFRAC
//	dtbsim -policy dtbfm:50k -workload SIS -telemetry run.jsonl
//	dtbsim -policy full -workload "ESPRESSO(2)" -cpuprofile cpu.pprof -memprofile mem.pprof
//	dtbsim -policy full -trace damaged.dtbt -recover
//	dtbsim -policy full -trace events.dtbt -resume 2 -inject read-err@64k
//
// The run is streamed through the replay engine: a generated workload
// is emitted event by event and a trace file is decoded event by
// event, so memory use is bounded by the simulated heap, not the
// trace length. Interrupting the process (Ctrl-C) cancels the replay
// at the next event boundary.
//
// -audit attaches the invariant auditor (internal/audit) to the run;
// any breach of the paper's per-scavenge identities is printed to
// stderr and fails the run with a non-zero exit. -telemetry streams
// per-scavenge JSON-lines telemetry (the schema is documented in the
// README's Observability section) to a file, or to stdout with "-".
// -cpuprofile and -memprofile write stock pprof
// profiles of the harness itself, so its hot spots are measurable
// with `go tool pprof`. Conflicting flags are rejected: -policy
// cannot be combined with -baseline, -workload with -trace, and
// -scale only applies to generated workloads.
//
// Robustness flags: -recover decodes a damaged trace with the
// recovery decoder, resyncing past corrupt records and absorbing a
// torn tail; the exact drop accounting prints to stderr (and lands in
// the telemetry stream as a "drops" line) — never silently. -resume N
// retries a replay interrupted between events (source read error,
// cancellation) up to N times by reopening the source; the resumed
// results are bit-identical to an uninterrupted run. -inject SPEC
// schedules deterministic faults on the tool's own I/O (see
// internal/fault) to prove those paths under test.
//
// Exit status: 0 on success (including a recovered run with accounted
// drops), 1 on operational failure, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dtbsim:", err)
	}
	os.Exit(cliio.ExitCode(err))
}

// run is the whole tool behind a single error return, so every
// deferred cleanup (profile stop, output close checks) fires exactly
// once on success and failure alike — an os.Exit on the error path
// would skip them, which is how a CPU profile ends up empty and a
// truncated output file exits 0.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("dtbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policySpec := fs.String("policy", "", "collector policy (full, fixed1, fixed4, feedmed:<b>, dtbfm:<b>, dtbmem:<b>)")
	baseline := fs.String("baseline", "", "baseline instead of a policy: nogc or live")
	workloadName := fs.String("workload", "", `paper workload name, e.g. "GHOST(1)", ESPRESSO(2), SIS, CFRAC`)
	traceFile := fs.String("trace", "", "binary trace file to replay instead of a workload")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	trigger := fs.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	history := fs.Bool("history", false, "print the per-scavenge history as CSV instead of the summary")
	opportunistic := fs.Bool("opportunistic", false, "also scavenge at trace marks (program quiescent points)")
	pageFrames := fs.Int("pages", 0, "enable the VM model with this many resident 4 KB pages")
	auditRun := fs.Bool("audit", false, "attach the invariant auditor; violations go to stderr and fail the run")
	telemetry := fs.String("telemetry", "", "write per-scavenge JSON-lines telemetry to FILE (- for stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile taken after the run to FILE")
	recoverTrace := fs.Bool("recover", false, "decode the -trace file with the recovery decoder, resyncing past damage with accounted drops")
	resume := fs.Int("resume", 0, "retry a replay interrupted between events up to N times by reopening the source")
	inject := fs.String("inject", "", `schedule deterministic I/O faults, e.g. "read-err@64k,close-err" (see internal/fault)`)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}

	// Conflicting flags are an error, not a silent preference: a
	// dropped -policy or -scale yields a plausible-looking result for
	// a run the user did not ask for.
	if err := cliio.Conflicts(fs,
		cliio.Conflict{A: "policy", B: "baseline", Reason: "a run is driven by one or the other"},
		cliio.Conflict{A: "workload", B: "trace", Reason: "choose one event source"},
		cliio.Conflict{A: "scale", B: "trace", Reason: "-scale applies to generated workloads and cannot rescale a recorded trace"},
	); err != nil {
		return err
	}
	if *recoverTrace && *traceFile == "" {
		return cliio.Usagef("-recover decodes a damaged -trace file; a generated workload has nothing to recover")
	}
	if *resume < 0 {
		return cliio.Usagef("-resume %d: retry count cannot be negative", *resume)
	}

	var plan *fault.Plan
	if *inject != "" {
		plan, err = fault.ParseSpec(*inject)
		if err != nil {
			return &cliio.UsageError{Err: err}
		}
	}

	opts := dtbgc.SimOptions{TriggerBytes: *trigger, Opportunistic: *opportunistic, PageFrames: *pageFrames}
	switch *baseline {
	case "":
		p, err := dtbgc.ParsePolicy(*policySpec)
		if err != nil {
			return &cliio.UsageError{Err: err}
		}
		opts.Policy = p
	case "nogc":
		opts.NoGC = true
	case "live":
		opts.LiveOracle = true
	default:
		return cliio.Usagef("unknown baseline %q (nogc or live)", *baseline)
	}

	var wl dtbgc.Workload
	switch {
	case *traceFile != "":
	case *workloadName != "":
		w, err := dtbgc.LookupWorkload(*workloadName)
		if err != nil {
			return &cliio.UsageError{Err: err}
		}
		wl = w.Scale(*scale)
	default:
		return cliio.Usagef("need -workload or -trace")
	}

	var telOut *cliio.Output
	var tw *dtbgc.TelemetryWriter
	if *telemetry != "" {
		telOut, err = cliio.Create(*telemetry, stdout, plan)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := telOut.Close(); err == nil {
				err = fold("telemetry", cerr)
			}
		}()
		tw = dtbgc.NewTelemetryWriter(telOut)
	}
	var auditor *dtbgc.Auditor
	if *auditRun {
		auditor = dtbgc.NewAuditor()
	}
	label := ""
	if tw != nil || auditor != nil {
		// Append only the live probes: a typed-nil *TelemetryWriter
		// boxed into the Probe interface would not read as nil.
		var probes []dtbgc.Probe
		if tw != nil {
			probes = append(probes, tw)
		}
		if auditor != nil {
			probes = append(probes, auditor)
		}
		opts.Probe = dtbgc.CombineProbes(probes...)
		switch {
		case *workloadName != "":
			label = *workloadName
		default:
			label = *traceFile
		}
		opts.Label = label
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		profOut, perr := cliio.Create(*cpuprofile, nil, plan)
		if perr != nil {
			return perr
		}
		if perr := pprof.StartCPUProfile(profOut); perr != nil {
			//dtbvet:ignore errsink -- cleanup after StartCPUProfile failed: perr wins and nothing was written yet
			profOut.Close()
			return perr
		}
		// Deferred, not called inline before the error checks: the
		// profile must stop and its file close-check must run on the
		// failure paths too.
		defer func() {
			pprof.StopCPUProfile()
			if cerr := profOut.Close(); err == nil {
				err = cerr
			}
		}()
	}

	// openSource (re)opens the event source for one replay attempt.
	// Each attempt gets its own cancel so an injected cancellation
	// storm kills only that attempt; a resume retries under a fresh
	// context with the one-shot fault already spent.
	openSource := func(cancel func()) (src dtbgc.EventSource, drops func() dtbgc.DropStats, closeFn func() error, err error) {
		if *traceFile != "" {
			f, err := os.Open(*traceFile)
			if err != nil {
				return nil, nil, nil, err
			}
			r := plan.Reader(f)
			if *recoverTrace {
				src, drops = dtbgc.RecoveringSource(r)
			} else {
				src = dtbgc.StreamSource(r)
			}
			closeFn = f.Close
		} else {
			src = wl.GenerateTo
		}
		return plan.Source(src, cancel), drops, closeFn, nil
	}

	var results []*dtbgc.Result
	var drops dtbgc.DropStats
	var cp *dtbgc.Checkpoint
	for attempt := 0; ; attempt++ {
		runCtx, cancel := context.WithCancel(ctx)
		src, dropsFn, closeFn, oerr := openSource(cancel)
		if oerr != nil {
			cancel()
			return oerr
		}
		var rerr error
		if cp == nil {
			results, cp, rerr = dtbgc.ReplayAllResumable(runCtx, src, []dtbgc.SimOptions{opts})
		} else {
			results, cp, rerr = cp.Resume(runCtx, src)
		}
		if dropsFn != nil {
			// The latest pass re-reads the stream from the top, so its
			// accounting covers the whole stream and supersedes any
			// interrupted pass's partial count.
			drops = dropsFn()
		}
		if closeFn != nil {
			if cerr := closeFn(); rerr == nil && cerr != nil {
				rerr = cerr
			}
		}
		cancel()
		if rerr == nil {
			break
		}
		if cp == nil || attempt >= *resume {
			return fmt.Errorf("replay: %w", rerr)
		}
		fmt.Fprintf(stderr, "dtbsim: resuming after: %v (%d events processed, attempt %d of %d)\n",
			rerr, cp.Events(), attempt+1, *resume)
	}
	res := results[0]

	// A recovered run is a success with a disclosed cost: the drops are
	// reported on stderr and in the telemetry/audit streams, and the
	// exit stays 0 — the failure mode this tool refuses is silence, not
	// damage.
	if drops.Any() {
		fmt.Fprintf(stderr, "dtbsim: recovered %s: %s\n", *traceFile, drops)
	}
	if tw != nil {
		tw.Drops(label, drops)
	}
	if auditor != nil {
		auditor.NoteDrops(label, drops)
	}

	if *memprofile != "" {
		err := cliio.WriteTo(*memprofile, nil, plan, func(w io.Writer) error {
			runtime.GC() // settle allocations so the profile shows retained heap
			return pprof.WriteHeapProfile(w)
		})
		if err != nil {
			return err
		}
	}
	if tw != nil {
		if werr := tw.Err(); werr != nil {
			return fmt.Errorf("writing telemetry: %w", werr)
		}
	}
	if auditor != nil {
		if vs := auditor.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintln(stderr, "dtbsim: audit:", v)
			}
			return fmt.Errorf("audit: %d invariant violation(s)", len(vs))
		}
	}

	return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
		if *history {
			_, err := io.WriteString(w, dtbgc.HistoryCSV(res))
			return err
		}
		printSummary(w, res)
		return nil
	})
}

// printSummary writes the human summary; write errors stick in the
// enclosing Output and surface at its close.
func printSummary(w io.Writer, res *dtbgc.Result) {
	fmt.Fprintf(w, "collector:      %s\n", res.Collector)
	fmt.Fprintf(w, "total alloc:    %.0f KB over %.1f s (model time)\n", float64(res.TotalAlloc)/1024, res.ExecSeconds)
	fmt.Fprintf(w, "memory mean/max: %.0f / %.0f KB\n", res.MemMeanBytes/1024, res.MemMaxBytes/1024)
	fmt.Fprintf(w, "live   mean/max: %.0f / %.0f KB\n", res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
	fmt.Fprintf(w, "collections:    %d\n", res.Collections)
	if res.Collections > 0 {
		fmt.Fprintf(w, "pauses p50/p90: %.0f / %.0f ms\n", res.MedianPauseSeconds()*1000, res.P90PauseSeconds()*1000)
		fmt.Fprintf(w, "traced total:   %.0f KB (overhead %.1f%%)\n", float64(res.TracedTotalBytes)/1024, res.OverheadPct)
	}
	if res.PageAccesses > 0 {
		fmt.Fprintf(w, "page faults:    %d of %d accesses (%.2f%%)\n",
			res.PageFaults, res.PageAccesses, 100*float64(res.PageFaults)/float64(res.PageAccesses))
	}
}

// fold labels a close error with the stream it came from.
func fold(name string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", name, err)
}
