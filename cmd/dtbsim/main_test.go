package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

// writeFixtureTrace writes a small recorded trace and returns its path.
func writeFixtureTrace(t *testing.T) string {
	t.Helper()
	events, err := dtbgc.WorkloadByName("CFRAC").Scale(0.01).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty fixture workload")
	}
	path := filepath.Join(t.TempDir(), "fixture.dtbt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtbgc.WriteTrace(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sim runs the tool's run() and returns its streams and exit code.
func sim(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errs bytes.Buffer
	err := run(args, &out, &errs)
	return out.String(), errs.String(), cliio.ExitCode(err)
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                  // no source
		{"-policy", "full"}, // still no source
		{"-policy", "full", "-baseline", "live", "-workload", "CFRAC"}, // conflict
		{"-policy", "full", "-workload", "CFRAC", "-trace", "x.dtbt"},  // conflict
		{"-policy", "full", "-trace", "x.dtbt", "-scale", "0.5"},       // scale on a trace
		{"-policy", "nope", "-workload", "CFRAC"},                      // unknown policy
		{"-baseline", "nope", "-workload", "CFRAC"},                    // unknown baseline
		{"-policy", "full", "-workload", "CFRAC", "-resume", "-1"},
		{"-policy", "full", "-workload", "CFRAC", "-inject", "bogus@1"},
		{"-recover", "-policy", "full", "-workload", "CFRAC"}, // recover without a trace
		{"-definitely-not-a-flag"},
	} {
		if _, _, code := sim(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestWorkloadRunSucceeds(t *testing.T) {
	stdout, _, code := sim(t, "-policy", "full", "-workload", "CFRAC", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "collector:") {
		t.Fatalf("summary missing from stdout: %q", stdout)
	}
}

func TestTraceReplayMatchesWorkloadRun(t *testing.T) {
	path := writeFixtureTrace(t)
	fromTrace, _, code := sim(t, "-policy", "full", "-trace", path)
	if code != 0 {
		t.Fatalf("trace replay exit %d", code)
	}
	fromWorkload, _, code := sim(t, "-policy", "full", "-workload", "CFRAC", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("workload run exit %d", code)
	}
	if fromTrace != fromWorkload {
		t.Fatalf("replaying the recorded trace gave a different summary:\n%s\nvs\n%s", fromTrace, fromWorkload)
	}
}

// TestHeaderOnlyTraceIsCleanEmptyRun is the satellite regression at the
// CLI layer: a trace file holding just the header (an empty recording)
// replays as a run over zero events, not a truncation failure.
func TestHeaderOnlyTraceIsCleanEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.dtbt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtbgc.WriteTrace(f, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stdout, _, code := sim(t, "-policy", "full", "-trace", path)
	if code != 0 {
		t.Fatalf("header-only trace exit %d", code)
	}
	if !strings.Contains(stdout, "collections:    0") {
		t.Fatalf("expected an empty run summary, got:\n%s", stdout)
	}
}

// TestTornTraceFailsStrictRecoversWithFlag: a trace cut mid-record
// fails a strict replay loudly, and -recover turns it into a success
// with the drop disclosed on stderr.
func TestTornTraceFailsStrictRecoversWithFlag(t *testing.T) {
	path := writeFixtureTrace(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.dtbt")
	// Cutting one byte always lands mid-record: every record is at
	// least two bytes (kind + payload).
	if err := os.WriteFile(torn, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, code := sim(t, "-policy", "full", "-trace", torn); code != 1 {
		t.Fatalf("strict replay of a torn trace exited %d, want 1", code)
	}
	_, stderr, code := sim(t, "-policy", "full", "-trace", torn, "-recover")
	if code != 0 {
		t.Fatalf("-recover exited %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "recovered") || !strings.Contains(stderr, "torn tail") {
		t.Fatalf("recovery did not disclose the drop on stderr: %q", stderr)
	}
}

// TestRecoveredDropsLandInTelemetry: the drops travel the machine
// channel too, as a "drops" line in the telemetry stream.
func TestRecoveredDropsLandInTelemetry(t *testing.T) {
	path := writeFixtureTrace(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.dtbt")
	if err := os.WriteFile(torn, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	tel := filepath.Join(t.TempDir(), "run.jsonl")
	if _, _, code := sim(t, "-policy", "full", "-trace", torn, "-recover", "-audit", "-telemetry", tel); code != 0 {
		t.Fatalf("exit %d", code)
	}
	blob, err := os.ReadFile(tel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"event":"drops"`) || !strings.Contains(string(blob), `"torn_tail_records":1`) {
		t.Fatalf("telemetry missing the drops line:\n%s", blob)
	}
}

// TestResumeAfterInjectedReadError: a transient source failure plus
// -resume produces the identical summary to an undisturbed run, with
// the retry disclosed on stderr.
func TestResumeAfterInjectedReadError(t *testing.T) {
	path := writeFixtureTrace(t)
	want, _, code := sim(t, "-policy", "full", "-trace", path)
	if code != 0 {
		t.Fatalf("baseline exit %d", code)
	}
	got, stderr, code := sim(t, "-policy", "full", "-trace", path, "-resume", "1", "-inject", "read-err@4k")
	if code != 0 {
		t.Fatalf("resumed run exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "resuming after") {
		t.Fatalf("retry not disclosed on stderr: %q", stderr)
	}
	if got != want {
		t.Fatalf("resumed summary differs from the undisturbed run:\n%s\nvs\n%s", got, want)
	}
}

func TestResumeBudgetExhaustedFailsLoudly(t *testing.T) {
	path := writeFixtureTrace(t)
	_, _, code := sim(t, "-policy", "full", "-trace", path, "-inject", "read-err@4k")
	if code != 1 {
		t.Fatalf("injected read error without -resume exited %d, want 1", code)
	}
}

// TestOutputCloseFailuresExitNonzero is the silent-truncation satellite
// proof: a failure surfacing only at Close (ENOSPC at the final flush)
// on any output path must fail the run. Before the close checks these
// all exited 0 with truncated output.
func TestOutputCloseFailuresExitNonzero(t *testing.T) {
	path := writeFixtureTrace(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"telemetry", []string{"-telemetry", filepath.Join(dir, "t.jsonl")}},
		{"cpuprofile", []string{"-cpuprofile", filepath.Join(dir, "cpu.pprof")}},
		{"memprofile", []string{"-memprofile", filepath.Join(dir, "mem.pprof")}},
		{"summary", nil}, // stdout itself
	} {
		args := append([]string{"-policy", "full", "-trace", path, "-inject", "close-err"}, tc.args...)
		var out, errs bytes.Buffer
		err := run(args, &out, &errs)
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%s: close failure surfaced as %v, want the injected error", tc.name, err)
		}
		if cliio.ExitCode(err) != 1 {
			t.Errorf("%s: exit %d, want 1", tc.name, cliio.ExitCode(err))
		}
	}
}

// TestWriteFailuresExitNonzero: mid-stream write failures (disk full
// before the final flush) on the same paths.
func TestWriteFailuresExitNonzero(t *testing.T) {
	path := writeFixtureTrace(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		inject string
		args   []string
	}{
		{"telemetry", "write-err@64", []string{"-telemetry", filepath.Join(dir, "t.jsonl")}},
		{"memprofile", "write-err@1", []string{"-memprofile", filepath.Join(dir, "mem.pprof")}},
		{"summary", "write-err@10", nil},
		{"summary-short", "short-write@3", nil},
	} {
		args := append([]string{"-policy", "full", "-trace", path, "-inject", tc.inject}, tc.args...)
		if _, _, code := sim(t, args...); code != 1 {
			t.Errorf("%s (%s): exit %d, want 1", tc.name, tc.inject, code)
		}
	}
}

func TestAuditedRunStaysClean(t *testing.T) {
	path := writeFixtureTrace(t)
	if _, stderr, code := sim(t, "-policy", "dtbfm:8k", "-trace", path, "-audit"); code != 0 {
		t.Fatalf("audited run exit %d:\n%s", code, stderr)
	}
}
