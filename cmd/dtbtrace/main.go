// Command dtbtrace generates, converts and inspects allocation
// traces.
//
// Usage:
//
//	dtbtrace gen -workload "GHOST(1)" [-scale F] -o trace.dtbt
//	dtbtrace stat trace.dtbt
//	dtbtrace convert -from bin -to text trace.dtbt > trace.txt
//	dtbtrace validate trace.dtbt
//	dtbtrace window -from 0 -to 500000 -o window.dtbt trace.dtbt
//
// Every output path is checked through to Close — a full disk fails
// the command with a non-zero exit instead of leaving a silently
// truncated file. The file-writing subcommands take -inject SPEC to
// schedule deterministic I/O faults (see internal/fault) for testing
// exactly that. Exit status: 0 success, 1 operational failure, 2
// usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dtbtrace:", err)
	}
	os.Exit(cliio.ExitCode(err))
}

// run dispatches the subcommands; every path returns through here so
// deferred close checks always fire and the exit code is uniform.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageErr()
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "gen":
		return cmdGen(rest, stdout, stderr)
	case "stat":
		return cmdStat(rest, stdout)
	case "convert":
		return cmdConvert(rest, stdout, stderr)
	case "validate":
		return cmdValidate(rest, stdout)
	case "forward":
		return cmdForward(rest, stdout)
	case "window":
		return cmdWindow(rest, stdout, stderr)
	case "lifetimes":
		return cmdLifetimes(rest, stdout)
	default:
		return usageErr()
	}
}

func usageErr() error {
	return cliio.Usagef("usage: dtbtrace {gen|stat|convert|validate|forward|window|lifetimes} ...")
}

// newFlagSet builds a subcommand flag set that reports parse problems
// as errors (usage exit) instead of exiting past the close checks.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseArgs finishes a subcommand flag parse, folding flag errors into
// the shared exit discipline.
func parseArgs(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	return nil
}

// injectPlan parses a subcommand's -inject value.
func injectPlan(spec string) (*fault.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	p, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, &cliio.UsageError{Err: err}
	}
	return p, nil
}

// cmdLifetimes prints the trace's object demographics and survival
// function — the data the workload profiles are calibrated from.
func cmdLifetimes(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return cliio.Usagef("lifetimes needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	ls, err := dtbgc.MeasureLifetimes(events)
	if err != nil {
		return err
	}
	fitted, err := dtbgc.FitWorkload(events, "fitted")
	if err != nil {
		return err
	}
	return cliio.WriteTo("", stdout, nil, func(w io.Writer) error {
		fmt.Fprintf(w, "objects:        %d (mean %.0f bytes)\n", ls.TotalObjects, ls.MeanObjectBytes)
		fmt.Fprintf(w, "total bytes:    %d\n", ls.TotalBytes)
		fmt.Fprintf(w, "permanent:      %.1f%% of bytes never die\n", ls.PermanentFraction()*100)
		fmt.Fprintln(w, "survival S(age) over observed deaths (age in KB of subsequent allocation):")
		for _, ageKB := range []uint64{1, 4, 16, 64, 256, 1024, 4096} {
			fmt.Fprintf(w, "  S(%5d KB) = %.3f\n", ageKB, ls.SurvivalAt(ageKB*1024))
		}
		fmt.Fprintln(w, "fitted profile classes:")
		for _, c := range fitted.Classes {
			if c.Permanent {
				fmt.Fprintf(w, "  %.1f%% permanent\n", c.Fraction*100)
			} else {
				fmt.Fprintf(w, "  %.1f%% exponential, mean life %.0f KB\n", c.Fraction*100, c.MeanLife/1024)
			}
		}
		return nil
	})
}

// cmdWindow writes the sub-trace covering an instruction interval.
func cmdWindow(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("window", stderr)
	from := fs.Uint64("from", 0, "window start (instructions)")
	to := fs.Uint64("to", ^uint64(0), "window end (instructions)")
	out := fs.String("o", "", "output file (default stdout)")
	inject := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cliio.Usagef("window needs exactly one trace file")
	}
	plan, err := injectPlan(*inject)
	if err != nil {
		return err
	}
	events, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	windowed, err := dtbgc.WindowTrace(events, *from, *to)
	if err != nil {
		return err
	}
	return cliio.WriteTo(*out, stdout, plan, func(w io.Writer) error {
		return dtbgc.WriteTrace(w, windowed)
	})
}

// cmdForward reports the §4.2 observable: how many pointer stores are
// forward in time (and so must be remembered by the DTB collector).
func cmdForward(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return cliio.Usagef("forward needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	fwd, err := dtbgc.MeasureForwardPointers(events)
	if err != nil {
		return err
	}
	return cliio.WriteTo("", stdout, nil, func(w io.Writer) error {
		fmt.Fprintf(w, "pointer stores: %d (%d nil)\n", fwd.Stores, fwd.NilStore)
		fmt.Fprintf(w, "forward:        %d (%.1f%% of non-nil)\n", fwd.Forward, fwd.ForwardFraction()*100)
		fmt.Fprintf(w, "backward:       %d\n", fwd.Backward)
		return nil
	})
}

func cmdGen(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	workloadName := fs.String("workload", "CFRAC", "paper workload name")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	out := fs.String("o", "", "output file (default stdout)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	inject := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	plan, err := injectPlan(*inject)
	if err != nil {
		return err
	}
	w, err := dtbgc.LookupWorkload(*workloadName)
	if err != nil {
		return err
	}
	events, err := w.Scale(*scale).Generate()
	if err != nil {
		return err
	}
	return cliio.WriteTo(*out, stdout, plan, func(dst io.Writer) error {
		if *text {
			return dtbgc.WriteTraceText(dst, events)
		}
		return dtbgc.WriteTrace(dst, events)
	})
}

func readTraceFile(path string) ([]dtbgc.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dtbgc.ReadTrace(f)
}

func cmdStat(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return cliio.Usagef("stat needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{LiveOracle: true})
	if err != nil {
		return err
	}
	return cliio.WriteTo("", stdout, nil, func(w io.Writer) error {
		fmt.Fprintf(w, "events:        %d\n", len(events))
		fmt.Fprintf(w, "total alloc:   %.0f KB\n", float64(res.TotalAlloc)/1024)
		fmt.Fprintf(w, "exec time:     %.2f s (10 MIPS model)\n", res.ExecSeconds)
		fmt.Fprintf(w, "live mean/max: %.0f / %.0f KB\n", res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
		return nil
	})
}

func cmdConvert(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("convert", stderr)
	from := fs.String("from", "bin", "input format: bin or text")
	to := fs.String("to", "text", "output format: bin or text")
	inject := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cliio.Usagef("convert needs exactly one trace file")
	}
	plan, err := injectPlan(*inject)
	if err != nil {
		return err
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	var events []dtbgc.Event
	switch *from {
	case "bin":
		events, err = dtbgc.ReadTrace(f)
	case "text":
		events, err = dtbgc.ReadTraceText(f)
	default:
		return cliio.Usagef("unknown input format %q", *from)
	}
	if err != nil {
		return err
	}
	switch *to {
	case "bin", "text":
	default:
		return cliio.Usagef("unknown output format %q", *to)
	}
	return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
		if *to == "bin" {
			return dtbgc.WriteTrace(w, events)
		}
		return dtbgc.WriteTraceText(w, events)
	})
}

func cmdValidate(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return cliio.Usagef("validate needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	if err := dtbgc.ValidateTrace(events); err != nil {
		return err
	}
	return cliio.WriteTo("", stdout, nil, func(w io.Writer) error {
		fmt.Fprintf(w, "ok: %d events\n", len(events))
		return nil
	})
}
