// Command dtbtrace generates, converts and inspects allocation
// traces.
//
// Usage:
//
//	dtbtrace gen -workload "GHOST(1)" [-scale F] -o trace.dtbt
//	dtbtrace stat trace.dtbt
//	dtbtrace convert -from bin -to text trace.dtbt > trace.txt
//	dtbtrace validate trace.dtbt
package main

import (
	"flag"
	"fmt"
	"os"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "forward":
		err = cmdForward(os.Args[2:])
	case "window":
		err = cmdWindow(os.Args[2:])
	case "lifetimes":
		err = cmdLifetimes(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dtbtrace {gen|stat|convert|validate|forward|window|lifetimes} ...")
	os.Exit(2)
}

// cmdLifetimes prints the trace's object demographics and survival
// function — the data the workload profiles are calibrated from.
func cmdLifetimes(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("lifetimes needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	ls, err := dtbgc.MeasureLifetimes(events)
	if err != nil {
		return err
	}
	fmt.Printf("objects:        %d (mean %.0f bytes)\n", ls.TotalObjects, ls.MeanObjectBytes)
	fmt.Printf("total bytes:    %d\n", ls.TotalBytes)
	fmt.Printf("permanent:      %.1f%% of bytes never die\n", ls.PermanentFraction()*100)
	fmt.Println("survival S(age) over observed deaths (age in KB of subsequent allocation):")
	for _, ageKB := range []uint64{1, 4, 16, 64, 256, 1024, 4096} {
		fmt.Printf("  S(%5d KB) = %.3f\n", ageKB, ls.SurvivalAt(ageKB*1024))
	}
	fitted, err := dtbgc.FitWorkload(events, "fitted")
	if err != nil {
		return err
	}
	fmt.Println("fitted profile classes:")
	for _, c := range fitted.Classes {
		if c.Permanent {
			fmt.Printf("  %.1f%% permanent\n", c.Fraction*100)
		} else {
			fmt.Printf("  %.1f%% exponential, mean life %.0f KB\n", c.Fraction*100, c.MeanLife/1024)
		}
	}
	return nil
}

// cmdWindow writes the sub-trace covering an instruction interval.
func cmdWindow(args []string) error {
	fs := flag.NewFlagSet("window", flag.ExitOnError)
	from := fs.Uint64("from", 0, "window start (instructions)")
	to := fs.Uint64("to", ^uint64(0), "window end (instructions)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("window needs exactly one trace file")
	}
	events, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	windowed, err := dtbgc.WindowTrace(events, *from, *to)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return dtbgc.WriteTrace(dst, windowed)
}

// cmdForward reports the §4.2 observable: how many pointer stores are
// forward in time (and so must be remembered by the DTB collector).
func cmdForward(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("forward needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	fs, err := dtbgc.MeasureForwardPointers(events)
	if err != nil {
		return err
	}
	fmt.Printf("pointer stores: %d (%d nil)\n", fs.Stores, fs.NilStore)
	fmt.Printf("forward:        %d (%.1f%% of non-nil)\n", fs.Forward, fs.ForwardFraction()*100)
	fmt.Printf("backward:       %d\n", fs.Backward)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workloadName := fs.String("workload", "CFRAC", "paper workload name")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	out := fs.String("o", "", "output file (default stdout)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := dtbgc.LookupWorkload(*workloadName)
	if err != nil {
		return err
	}
	events, err := w.Scale(*scale).Generate()
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if *text {
		return dtbgc.WriteTraceText(dst, events)
	}
	return dtbgc.WriteTrace(dst, events)
}

func readTraceFile(path string) ([]dtbgc.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dtbgc.ReadTrace(f)
}

func cmdStat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{LiveOracle: true})
	if err != nil {
		return err
	}
	fmt.Printf("events:        %d\n", len(events))
	fmt.Printf("total alloc:   %.0f KB\n", float64(res.TotalAlloc)/1024)
	fmt.Printf("exec time:     %.2f s (10 MIPS model)\n", res.ExecSeconds)
	fmt.Printf("live mean/max: %.0f / %.0f KB\n", res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	from := fs.String("from", "bin", "input format: bin or text")
	to := fs.String("to", "text", "output format: bin or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("convert needs exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	var events []dtbgc.Event
	switch *from {
	case "bin":
		events, err = dtbgc.ReadTrace(f)
	case "text":
		events, err = dtbgc.ReadTraceText(f)
	default:
		return fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		return err
	}
	switch *to {
	case "bin":
		return dtbgc.WriteTrace(os.Stdout, events)
	case "text":
		return dtbgc.WriteTraceText(os.Stdout, events)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate needs exactly one trace file")
	}
	events, err := readTraceFile(args[0])
	if err != nil {
		return err
	}
	if err := dtbgc.ValidateTrace(events); err != nil {
		return err
	}
	fmt.Printf("ok: %d events\n", len(events))
	return nil
}
