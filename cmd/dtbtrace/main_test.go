package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

// tool runs the CLI's run() and returns its streams and exit code.
func tool(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errs bytes.Buffer
	err := run(args, &out, &errs)
	return out.String(), errs.String(), cliio.ExitCode(err)
}

func genFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixture.dtbt")
	if _, stderr, code := tool(t, "gen", "-workload", "CFRAC", "-scale", "0.01", "-o", path); code != 0 {
		t.Fatalf("gen exited %d:\n%s", code, stderr)
	}
	return path
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"gen", "-no-such-flag"},
		{"stat"},           // missing file
		{"stat", "a", "b"}, // too many files
		{"convert", "-from", "xml", os.DevNull},
		{"window"}, // missing file
		{"gen", "-inject", "bogus@1"},
		{"gen", "-inject", "short-write@0"},
	} {
		if _, _, code := tool(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestMissingInputExitsOne(t *testing.T) {
	if _, _, code := tool(t, "stat", filepath.Join(t.TempDir(), "absent.dtbt")); code != 1 {
		t.Errorf("stat on a missing file: exit %d, want 1", code)
	}
}

func TestGenStatValidateRoundTrip(t *testing.T) {
	path := genFixture(t)
	stdout, _, code := tool(t, "stat", path)
	if code != 0 || !strings.Contains(stdout, "events:") {
		t.Fatalf("stat exit %d:\n%s", code, stdout)
	}
	stdout, _, code = tool(t, "validate", path)
	if code != 0 || !strings.Contains(stdout, "ok:") {
		t.Fatalf("validate exit %d:\n%s", code, stdout)
	}
}

func TestConvertBinToTextToBin(t *testing.T) {
	path := genFixture(t)
	text, _, code := tool(t, "convert", "-from", "bin", "-to", "text", path)
	if code != 0 {
		t.Fatalf("convert to text exit %d", code)
	}
	textPath := filepath.Join(t.TempDir(), "fixture.txt")
	if err := os.WriteFile(textPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	bin, _, code := tool(t, "convert", "-from", "text", "-to", "bin", textPath)
	if code != 0 {
		t.Fatalf("convert back to bin exit %d", code)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(bin), orig) {
		t.Fatal("bin -> text -> bin round trip changed the stream")
	}
}

func TestWindowWritesSubTrace(t *testing.T) {
	path := genFixture(t)
	out := filepath.Join(t.TempDir(), "window.dtbt")
	if _, _, code := tool(t, "window", "-from", "0", "-to", "100000", "-o", out, path); code != 0 {
		t.Fatalf("window exit %d", code)
	}
	if _, _, code := tool(t, "validate", out); code != 0 {
		t.Fatal("windowed trace does not validate")
	}
}

// TestOutputFaultsExitNonzero is the silent-truncation satellite proof
// for every dtbtrace output path: a write failure, a short write, or an
// error surfacing only at Close must all fail the command. Before the
// checked-close fix the close-err cases exited 0 leaving a truncated
// file behind.
func TestOutputFaultsExitNonzero(t *testing.T) {
	src := genFixture(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		inject string
		args   func(out string) []string
	}{
		{"gen-close", "close-err", func(out string) []string {
			return []string{"gen", "-workload", "CFRAC", "-scale", "0.01", "-o", out}
		}},
		{"gen-write", "write-err@100", func(out string) []string {
			return []string{"gen", "-workload", "CFRAC", "-scale", "0.01", "-o", out}
		}},
		{"gen-short", "short-write@7", func(out string) []string {
			return []string{"gen", "-workload", "CFRAC", "-scale", "0.01", "-o", out}
		}},
		{"window-close", "close-err", func(out string) []string {
			return []string{"window", "-from", "0", "-o", out, src}
		}},
		{"convert-write", "write-err@50", func(string) []string {
			return []string{"convert", "-from", "bin", "-to", "text", src}
		}},
	} {
		out := filepath.Join(dir, tc.name+".out")
		args := tc.args(out)
		args = append([]string{args[0], "-inject", tc.inject}, args[1:]...)
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if code := cliio.ExitCode(err); code != 1 {
			t.Errorf("%s: exit %d (err %v), want 1", tc.name, code, err)
			continue
		}
		if strings.Contains(tc.inject, "close-err") && !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%s: close failure surfaced as %v, want the injected error", tc.name, err)
		}
		if strings.Contains(tc.inject, "short-write") && !errors.Is(err, io.ErrShortWrite) {
			t.Errorf("%s: short write surfaced as %v, want io.ErrShortWrite", tc.name, err)
		}
	}
}
