package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// emitted runs a real simulation through the real TelemetryWriter, so
// the checker is tested against the stream the simulator actually
// produces — the drift this command exists to catch.
func emitted(t *testing.T) []byte {
	t.Helper()
	b := trace.NewBuilder()
	var ids []trace.ObjectID
	for i := 0; i < 600; i++ {
		b.Advance(50)
		ids = append(ids, b.Alloc(1024))
		if len(ids) > 6 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	var buf bytes.Buffer
	_, err := sim.Run(b.Events(), sim.Config{
		Policy:       core.DtbFM{TraceMax: 8 * 1024},
		TriggerBytes: 64 * 1024,
		Probe:        sim.NewTelemetryWriter(&buf),
		Label:        "test/DtbFM",
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckerAcceptsRealStream(t *testing.T) {
	stream := emitted(t)
	problems, err := checkStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("real telemetry stream rejected:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckerRejectsViolations(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of some reported problem
	}{
		{"garbage", "not json\n", "not a JSON object"},
		{"unknown event", `{"event":"nope","label":""}` + "\n", "unknown event type"},
		{"missing field", `{"event":"run_start","label":"x"}` + "\n", "missing field"},
		{"mistyped field", `{"event":"run_start","label":"x","collector":3,"mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n", `"collector" is not a string`},
		{"empty stream", "", "stream is empty"},
		{"scavenge without decision",
			`{"event":"run_start","label":"x","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n" +
				`{"event":"scavenge","label":"x","n":1,"trigger":"bytes","t":10,"tb":0,"mem_before":10,"traced":5,"reclaimed":5,"surviving":5,"live":5,"tenured_garbage":0,"pause_seconds":0.1}` + "\n",
			"without a preceding decision"},
		{"missing run_finish",
			`{"event":"run_start","label":"x","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n",
			"no run_finish"},
		{"tenured garbage mismatch",
			`{"event":"run_start","label":"x","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n" +
				`{"event":"decision","label":"x","n":1,"trigger":"bytes","now":10,"tb":0,"candidates":[0],"mem_before":10,"live_before":5}` + "\n" +
				`{"event":"scavenge","label":"x","n":1,"trigger":"bytes","t":10,"tb":0,"mem_before":10,"traced":5,"reclaimed":5,"surviving":5,"live":5,"tenured_garbage":3,"pause_seconds":0.1}` + "\n" +
				`{"event":"run_finish","label":"x","collector":"Full","collections":1,"total_alloc":10,"exec_seconds":1,"mem_mean_bytes":1,"mem_max_bytes":1,"live_mean_bytes":1,"live_max_bytes":1,"traced_total_bytes":5,"overhead_pct":1,"pause_p50_seconds":0.1,"pause_p90_seconds":0.1}` + "\n",
			"tenured_garbage"},
		{"collection count mismatch",
			`{"event":"run_start","label":"x","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n" +
				`{"event":"run_finish","label":"x","collector":"Full","collections":2,"total_alloc":10,"exec_seconds":1,"mem_mean_bytes":1,"mem_max_bytes":1,"live_mean_bytes":1,"live_max_bytes":1,"traced_total_bytes":5,"overhead_pct":1,"pause_p50_seconds":0.1,"pause_p90_seconds":0.1}` + "\n",
			"collections=2 but 0 scavenge"},
	}
	for _, tc := range cases {
		problems, err := checkStream(strings.NewReader(tc.input))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %q do not mention %q", tc.name, problems, tc.want)
		}
	}
}

// adaptiveDecisionPrefix is a valid run_start plus a decision with all
// required fields, ready for adaptive-annotation suffixes.
const adaptiveDecisionPrefix = `{"event":"run_start","label":"x","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}` + "\n" +
	`{"event":"decision","label":"x","n":1,"trigger":"bytes","now":10,"tb":0,"candidates":[0],"mem_before":10,"live_before":5`

func TestCheckerAcceptsRealAdaptiveStream(t *testing.T) {
	b := trace.NewBuilder()
	var ids []trace.ObjectID
	for i := 0; i < 600; i++ {
		b.Advance(50)
		ids = append(ids, b.Alloc(1024))
		if len(ids) > 6 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	var buf bytes.Buffer
	_, err := sim.Run(b.Events(), sim.Config{
		Policy:       core.Bandit{Eps: 0.2},
		TriggerBytes: 64 * 1024,
		Probe:        sim.NewTelemetryWriter(&buf),
		Label:        "test/Bandit",
		PolicySeed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"arm":`)) || !bytes.Contains(buf.Bytes(), []byte(`"features_digest":"`)) {
		t.Fatal("adaptive stream carries no arm/features_digest annotations; the checker would be testing nothing")
	}
	problems, err := checkStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("real adaptive telemetry stream rejected:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckerRejectsAdaptiveViolations(t *testing.T) {
	cases := []struct {
		name   string
		suffix string // appended inside the decision object
		want   string
	}{
		{"mistyped arm", `,"arm":"3","features_digest":"00000000deadbeef"}`, `optional field "arm" is not a number`},
		{"mistyped digest", `,"arm":3,"features_digest":7}`, `optional field "features_digest" is not a string`},
		{"arm without digest", `,"arm":3}`, "without features_digest"},
		{"fractional arm", `,"arm":1.5,"features_digest":"00000000deadbeef"}`, "not a non-negative integer"},
		{"negative arm", `,"arm":-1,"features_digest":"00000000deadbeef"}`, "not a non-negative integer"},
		{"short digest", `,"arm":3,"features_digest":"deadbeef"}`, "not 16 lowercase hex"},
		{"uppercase digest", `,"arm":3,"features_digest":"00000000DEADBEEF"}`, "not 16 lowercase hex"},
	}
	for _, tc := range cases {
		input := adaptiveDecisionPrefix + tc.suffix + "\n"
		problems, err := checkStream(strings.NewReader(input))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %q do not mention %q", tc.name, problems, tc.want)
		}
	}
	// And a well-formed adaptive decision adds no problems beyond the
	// (expected) unmatched-decision and missing-finish tails.
	input := adaptiveDecisionPrefix + `,"arm":3,"features_digest":"00000000deadbeef"}` + "\n"
	problems, err := checkStream(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		if strings.Contains(p, "arm") || strings.Contains(p, "digest") {
			t.Errorf("well-formed adaptive decision flagged: %q", p)
		}
	}
}

func TestCheckerDemuxesInterleavedRuns(t *testing.T) {
	// Two concurrent runs interleaved line-by-line must both validate.
	a := `{"event":"run_start","label":"a","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}`
	b := `{"event":"run_start","label":"b","collector":"Full","mips":40,"trace_bytes_per_sec":2000000,"trigger_bytes":1,"progress_bytes":1,"opportunistic":false}`
	af := `{"event":"run_finish","label":"a","collector":"Full","collections":0,"total_alloc":10,"exec_seconds":1,"mem_mean_bytes":1,"mem_max_bytes":1,"live_mean_bytes":1,"live_max_bytes":1,"traced_total_bytes":0,"overhead_pct":0,"pause_p50_seconds":0,"pause_p90_seconds":0}`
	bf := `{"event":"run_finish","label":"b","collector":"Full","collections":0,"total_alloc":10,"exec_seconds":1,"mem_mean_bytes":1,"mem_max_bytes":1,"live_mean_bytes":1,"live_max_bytes":1,"traced_total_bytes":0,"overhead_pct":0,"pause_p50_seconds":0,"pause_p90_seconds":0}`
	input := strings.Join([]string{a, b, af, bf}, "\n") + "\n"
	problems, err := checkStream(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("interleaved runs rejected: %q", problems)
	}
}
