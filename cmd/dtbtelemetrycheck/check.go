package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// fieldKind is the expected JSON type of a schema field.
type fieldKind byte

const (
	kindString fieldKind = 's'
	kindNumber fieldKind = 'n'
	kindBool   fieldKind = 'b'
	kindArray  fieldKind = 'a' // array of numbers
)

func (k fieldKind) String() string {
	switch k {
	case kindString:
		return "string"
	case kindNumber:
		return "number"
	case kindBool:
		return "bool"
	case kindArray:
		return "number array"
	}
	return "unknown"
}

// field is one required schema field.
type field struct {
	name string
	kind fieldKind
}

// schema lists the required fields per event type, mirroring the
// envelopes in internal/sim's TelemetryWriter and the README's
// Observability section. Extra fields are allowed (forward
// compatibility); missing or mistyped ones are violations.
var schema = map[string][]field{
	"run_start": {
		{"label", kindString}, {"collector", kindString},
		{"mips", kindNumber}, {"trace_bytes_per_sec", kindNumber},
		{"trigger_bytes", kindNumber}, {"progress_bytes", kindNumber},
		{"opportunistic", kindBool},
	},
	"decision": {
		{"label", kindString}, {"n", kindNumber}, {"trigger", kindString},
		{"now", kindNumber}, {"tb", kindNumber}, {"candidates", kindArray},
		{"mem_before", kindNumber}, {"live_before", kindNumber},
	},
	"scavenge": {
		{"label", kindString}, {"n", kindNumber}, {"trigger", kindString},
		{"t", kindNumber}, {"tb", kindNumber}, {"mem_before", kindNumber},
		{"traced", kindNumber}, {"reclaimed", kindNumber},
		{"surviving", kindNumber}, {"live", kindNumber},
		{"tenured_garbage", kindNumber}, {"pause_seconds", kindNumber},
	},
	"progress": {
		{"label", kindString}, {"events", kindNumber}, {"instr", kindNumber},
		{"allocated", kindNumber}, {"in_use", kindNumber},
		{"live", kindNumber}, {"collections", kindNumber},
	},
	"drops": {
		{"label", kindString}, {"corrupt_records", kindNumber},
		{"torn_tail_records", kindNumber}, {"bytes_dropped", kindNumber},
	},
	"run_finish": {
		{"label", kindString}, {"collector", kindString},
		{"collections", kindNumber}, {"total_alloc", kindNumber},
		{"exec_seconds", kindNumber}, {"mem_mean_bytes", kindNumber},
		{"mem_max_bytes", kindNumber}, {"live_mean_bytes", kindNumber},
		{"live_max_bytes", kindNumber}, {"traced_total_bytes", kindNumber},
		{"overhead_pct", kindNumber},
		{"pause_p50_seconds", kindNumber}, {"pause_p90_seconds", kindNumber},
	},
}

// optionalSchema lists fields that may appear on an event but must be
// well-typed when they do. Adaptive policies annotate their decisions
// with the chosen bandit arm and a digest of the decision inputs;
// pure-policy streams omit both, and old streams stay valid unchanged.
var optionalSchema = map[string][]field{
	"decision": {
		{"arm", kindNumber},
		{"features_digest", kindString},
	},
}

// runState tracks per-run sequence invariants. Runs are keyed by
// label; a well-formed stream may interleave several (the evaluation
// harness runs workloads concurrently) but each run's own events stay
// ordered.
type runState struct {
	started         bool
	finished        bool
	scavenges       int
	pendingDecision int // index of an emitted decision awaiting its scavenge (0 = none)
}

// checkStream validates one telemetry stream and returns the schema
// violations it found, in line order. The error return is for I/O
// problems only.
func checkStream(r io.Reader) ([]string, error) {
	var problems []string
	runs := make(map[string]*runState)
	var runOrder []string // first-seen order, so reporting is deterministic

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			problems = append(problems, fmt.Sprintf("line %d: empty line", lineNo))
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			problems = append(problems, fmt.Sprintf("line %d: not a JSON object: %v", lineNo, err))
			continue
		}
		event, ok := obj["event"].(string)
		if !ok {
			problems = append(problems, fmt.Sprintf("line %d: missing string field %q", lineNo, "event"))
			continue
		}
		fields, known := schema[event]
		if !known {
			problems = append(problems, fmt.Sprintf("line %d: unknown event type %q", lineNo, event))
			continue
		}
		bad := false
		for _, f := range fields {
			if msg := checkField(obj, f); msg != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s: %s", lineNo, event, msg))
				bad = true
			}
		}
		for _, f := range optionalSchema[event] {
			if _, present := obj[f.name]; !present {
				continue
			}
			if msg := checkField(obj, f); msg != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s: optional %s", lineNo, event, msg))
				bad = true
			}
		}
		if bad {
			continue
		}
		label, _ := obj["label"].(string)
		st := runs[label]
		if st == nil {
			st = &runState{}
			runs[label] = st
			runOrder = append(runOrder, label)
		}
		problems = append(problems, checkSequence(st, event, obj, lineNo, label)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineNo == 0 {
		problems = append(problems, "stream is empty: expected at least run_start and run_finish")
	}
	for _, label := range runOrder {
		st := runs[label]
		if st.started && !st.finished {
			problems = append(problems, fmt.Sprintf("run %q: no run_finish event", label))
		}
		if st.pendingDecision != 0 {
			problems = append(problems, fmt.Sprintf("run %q: decision %d has no matching scavenge", label, st.pendingDecision))
		}
	}
	return problems, nil
}

// checkField verifies one required field's presence and JSON type,
// returning a problem description or "".
func checkField(obj map[string]any, f field) string {
	v, ok := obj[f.name]
	if !ok {
		return fmt.Sprintf("missing field %q", f.name)
	}
	switch f.kind {
	case kindString:
		if _, ok := v.(string); !ok {
			return fmt.Sprintf("field %q is not a %s", f.name, f.kind)
		}
	case kindNumber:
		n, ok := v.(float64)
		if !ok {
			return fmt.Sprintf("field %q is not a %s", f.name, f.kind)
		}
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return fmt.Sprintf("field %q is not finite", f.name)
		}
	case kindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Sprintf("field %q is not a %s", f.name, f.kind)
		}
	case kindArray:
		arr, ok := v.([]any)
		if !ok {
			return fmt.Sprintf("field %q is not a %s", f.name, f.kind)
		}
		for i, el := range arr {
			if _, ok := el.(float64); !ok {
				return fmt.Sprintf("field %q element %d is not a number", f.name, i)
			}
		}
	}
	return ""
}

// isHex16 reports whether s is exactly 16 lowercase hex digits — the
// fixed-width encoding TelemetryWriter uses for the feature digest.
func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// checkSequence enforces the per-run event ordering: run_start first,
// each scavenge preceded by its decision with the same 1-based index,
// indices increasing without gaps, run_finish last with a collection
// count matching the scavenges seen.
func checkSequence(st *runState, event string, obj map[string]any, lineNo int, label string) []string {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: run %q: %s", lineNo, label, fmt.Sprintf(format, args...)))
	}
	if event == "drops" {
		// Drops describe the input stream, not a run: they may appear
		// before run_start, after run_finish, or under a label with no
		// run at all. Their invariant is internal consistency: typed
		// counts and the byte total must agree, and a stream has at
		// most one torn tail.
		cr := obj["corrupt_records"].(float64)
		tt := obj["torn_tail_records"].(float64)
		bd := obj["bytes_dropped"].(float64)
		if cr < 0 || tt < 0 || bd < 0 {
			report("negative drop count (corrupt=%v torn=%v bytes=%v)", cr, tt, bd)
		}
		if tt > 1 {
			report("torn_tail_records=%v, a stream has at most one torn tail", tt)
		}
		if (bd > 0) != (cr+tt > 0) {
			report("bytes_dropped=%v inconsistent with corrupt_records=%v + torn_tail_records=%v", bd, cr, tt)
		}
		return problems
	}
	if event != "run_start" && !st.started {
		report("%s before run_start", event)
		st.started = true // report once, then resynchronize
	}
	if st.finished {
		report("%s after run_finish", event)
	}
	switch event {
	case "run_start":
		if st.started {
			report("duplicate run_start")
		}
		st.started = true
	case "decision":
		n := int(obj["n"].(float64))
		if st.pendingDecision != 0 {
			report("decision %d while decision %d awaits its scavenge", n, st.pendingDecision)
		}
		if want := st.scavenges + 1; n != want {
			report("decision n=%d, want %d", n, want)
		}
		st.pendingDecision = n
		// Adaptive annotations: an arm index is only meaningful alongside
		// the feature digest, must be a whole number, and must stay
		// non-negative (the writer suppresses the field for policies with
		// no arm concept rather than emitting a sentinel).
		arm, hasArm := obj["arm"].(float64)
		digest, hasDigest := obj["features_digest"].(string)
		if hasArm {
			if !hasDigest {
				report("arm=%v without features_digest: adaptive decisions carry both", arm)
			}
			if arm < 0 || arm != float64(int64(arm)) { //dtbvet:ignore floatexact -- integrality check on a JSON number, the idiomatic spelling
				report("arm=%v is not a non-negative integer", arm)
			}
		}
		if hasDigest && !isHex16(digest) {
			report("features_digest %q is not 16 lowercase hex digits", digest)
		}
	case "scavenge":
		n := int(obj["n"].(float64))
		if st.pendingDecision == 0 {
			report("scavenge %d without a preceding decision", n)
		} else if n != st.pendingDecision {
			report("scavenge n=%d does not match decision n=%d", n, st.pendingDecision)
		}
		st.pendingDecision = 0
		st.scavenges = n
		if tb, t := obj["tb"].(float64), obj["t"].(float64); tb > t {
			report("boundary tb=%v is in the future of t=%v", tb, t)
		}
		surviving := obj["surviving"].(float64)
		live := obj["live"].(float64)
		// The counts are integers riding in JSON float64s; compare them
		// as integers rather than with float ==.
		if tg := obj["tenured_garbage"].(float64); int64(tg) != int64(surviving)-int64(live) {
			report("tenured_garbage=%v does not equal surviving-live=%v", tg, surviving-live)
		}
		if pause := obj["pause_seconds"].(float64); pause < 0 {
			report("negative pause %v", pause)
		}
	case "progress":
		// No ordering constraint beyond being inside the run.
	case "run_finish":
		st.finished = true
		if n := int(obj["collections"].(float64)); n != st.scavenges {
			report("run_finish collections=%d but %d scavenge events were emitted", n, st.scavenges)
		}
	}
	return problems
}
