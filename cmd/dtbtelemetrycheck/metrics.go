package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/dtbgc/dtbgc/internal/daemon"
)

// metricsFields are the snapshot's required keys — the documented
// schema of GET /v1/metrics. A daemon that stops emitting one of
// these (or grows an undocumented one) fails CI here, the same
// drift-guard contract checkStream enforces for telemetry lines.
var metricsFields = []string{
	"evals_served", "memo_hits", "cold_evals", "tape_hits",
	"rejected", "failed", "trace_uploads",
	"in_flight", "queued", "workers", "queue_depth",
	"tape_cache_traces", "tape_cache_bytes", "memo_entries",
	"service_p50_ms", "service_p99_ms", "uptime_seconds",
}

// checkMetrics validates one dtbd metrics snapshot document: exactly
// one JSON object, every documented field present at its documented
// type, no undocumented fields, finite and non-negative readings, and
// the serving identities (memo_hits + cold_evals == evals_served,
// tape_hits ⊆ cold_evals). The error return is for I/O problems only.
func checkMetrics(r io.Reader) ([]string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var problems []string

	// Presence first, against the raw object: a zero value in the
	// typed struct cannot distinguish "0" from "absent".
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return []string{fmt.Sprintf("not a JSON object: %v", err)}, nil
	}
	for _, f := range metricsFields {
		if _, ok := raw[f]; !ok {
			problems = append(problems, fmt.Sprintf("missing field %q", f))
		}
	}

	// Types and undocumented fields, via a strict decode into the wire
	// struct itself — the schema cannot drift from the implementation
	// because it IS the implementation.
	var snap daemon.MetricsSnapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		problems = append(problems, fmt.Sprintf("schema violation: %v", err))
		return problems, nil
	}

	for _, g := range []struct {
		name string
		v    int64
	}{
		{"in_flight", snap.InFlight}, {"queued", snap.Queued},
		{"workers", int64(snap.Workers)}, {"queue_depth", int64(snap.QueueDepth)},
		{"tape_cache_traces", int64(snap.TapeCacheTraces)},
		{"tape_cache_bytes", snap.TapeCacheBytes},
		{"memo_entries", int64(snap.MemoEntries)},
	} {
		if g.v < 0 {
			problems = append(problems, fmt.Sprintf("%s = %d: negative gauge", g.name, g.v))
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"service_p50_ms", snap.ServiceP50Ms},
		{"service_p99_ms", snap.ServiceP99Ms},
		{"uptime_seconds", snap.UptimeSeconds},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			problems = append(problems, fmt.Sprintf("%s = %v: must be finite and non-negative", f.name, f.v))
		}
	}
	if snap.MemoHits+snap.ColdEvals != snap.EvalsServed {
		problems = append(problems, fmt.Sprintf(
			"serving identity broken: memo_hits %d + cold_evals %d != evals_served %d",
			snap.MemoHits, snap.ColdEvals, snap.EvalsServed))
	}
	if snap.TapeHits > snap.ColdEvals {
		problems = append(problems, fmt.Sprintf(
			"tape_hits %d exceeds cold_evals %d: a tape hit is a kind of cold eval",
			snap.TapeHits, snap.ColdEvals))
	}
	if snap.ServiceP50Ms > snap.ServiceP99Ms {
		problems = append(problems, fmt.Sprintf(
			"service_p50_ms %v exceeds service_p99_ms %v", snap.ServiceP50Ms, snap.ServiceP99Ms))
	}
	return problems, nil
}
