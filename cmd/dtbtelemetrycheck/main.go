// Command dtbtelemetrycheck validates a JSON-lines telemetry stream
// (as written by dtbsim -telemetry or dtbgc.NewTelemetryWriter)
// against the documented schema: every line must be a JSON object
// carrying a known "event" discriminator with that event's required
// fields at the required JSON types, and each run's event sequence
// must be coherent (run_start first, decision/scavenge pairs with
// increasing indices, run_finish last with a matching collection
// count). It is the CI gate that keeps the emitted telemetry and the
// README's schema documentation from drifting apart.
//
// Usage:
//
//	dtbtelemetrycheck FILE...
//	dtbsim -policy full -workload SIS -telemetry - | dtbtelemetrycheck -
//
// Exit status is 0 when every stream is schema-valid, 1 otherwise.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dtbtelemetrycheck FILE... (- for stdin)")
		os.Exit(2)
	}
	failed := false
	for _, arg := range os.Args[1:] {
		var r io.Reader
		name := arg
		if arg == "-" {
			r, name = os.Stdin, "<stdin>"
		} else {
			f, err := os.Open(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtbtelemetrycheck:", err)
				os.Exit(2)
			}
			defer f.Close()
			r = f
		}
		problems, err := checkStream(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtbtelemetrycheck: %s: %v\n", name, err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Printf("%s: %s\n", name, p)
		}
		if len(problems) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
