// Command dtbtelemetrycheck validates a JSON-lines telemetry stream
// (as written by dtbsim -telemetry or dtbgc.NewTelemetryWriter)
// against the documented schema: every line must be a JSON object
// carrying a known "event" discriminator with that event's required
// fields at the required JSON types, and each run's event sequence
// must be coherent (run_start first, decision/scavenge pairs with
// increasing indices, run_finish last with a matching collection
// count). It is the CI gate that keeps the emitted telemetry and the
// README's schema documentation from drifting apart.
//
// Usage:
//
//	dtbtelemetrycheck FILE...
//	dtbsim -policy full -workload SIS -telemetry - | dtbtelemetrycheck -
//	curl -s http://127.0.0.1:7341/v1/metrics | dtbtelemetrycheck -metrics -
//
// -metrics switches to the dtbd metrics-snapshot schema instead: one
// JSON object per input with every documented field present at its
// documented type, finite non-negative readings, and the serving
// identities intact (memo_hits + cold_evals == evals_served,
// tape_hits within cold_evals). It is the CI gate on the daemon's
// /v1/metrics endpoint, as checkStream is on telemetry lines.
//
// Exit status is 0 when every stream is schema-valid, 1 otherwise.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	args := os.Args[1:]
	check := checkStream
	if len(args) > 0 && args[0] == "-metrics" {
		check = checkMetrics
		args = args[1:]
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dtbtelemetrycheck [-metrics] FILE... (- for stdin)")
		os.Exit(2)
	}
	failed := false
	for _, arg := range args {
		var r io.Reader
		name := arg
		if arg == "-" {
			r, name = os.Stdin, "<stdin>"
		} else {
			f, err := os.Open(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtbtelemetrycheck:", err)
				os.Exit(2)
			}
			defer f.Close()
			r = f
		}
		problems, err := check(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtbtelemetrycheck: %s: %v\n", name, err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Printf("%s: %s\n", name, p)
		}
		if len(problems) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
