package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dtbgc/dtbgc/internal/daemon"
)

// validSnapshot marshals a live server's own snapshot — the one
// artifact the checker must always accept.
func validSnapshot(t *testing.T) []byte {
	t.Helper()
	s := daemon.NewServer(daemon.Config{Workers: 2})
	data, err := json.Marshal(s.Metrics())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return data
}

func TestCheckMetricsAcceptsLiveSnapshot(t *testing.T) {
	problems, err := checkMetrics(bytes.NewReader(validSnapshot(t)))
	if err != nil {
		t.Fatalf("checkMetrics: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("live snapshot rejected: %v", problems)
	}
}

func TestCheckMetricsRejectsBadDocuments(t *testing.T) {
	mutate := func(change func(m map[string]any)) string {
		var m map[string]any
		if err := json.Unmarshal(validSnapshot(t), &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		change(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(out)
	}
	cases := []struct {
		name  string
		input string
		want  string // substring of the expected problem
	}{
		{"not json", "nope", "not a JSON object"},
		{"missing field", mutate(func(m map[string]any) { delete(m, "evals_served") }), `missing field "evals_served"`},
		{"unknown field", mutate(func(m map[string]any) { m["surprise"] = 1 }), "schema violation"},
		{"wrong type", mutate(func(m map[string]any) { m["memo_hits"] = "three" }), "schema violation"},
		{"negative gauge", mutate(func(m map[string]any) { m["queued"] = -2 }), "negative gauge"},
		{"identity broken", mutate(func(m map[string]any) { m["memo_hits"] = 5 }), "serving identity broken"},
		{"tape exceeds cold", mutate(func(m map[string]any) { m["tape_hits"] = 7 }), "tape_hits 7 exceeds cold_evals"},
		{"negative uptime", mutate(func(m map[string]any) { m["uptime_seconds"] = -1 }), "finite and non-negative"},
		{"p50 above p99", mutate(func(m map[string]any) { m["service_p50_ms"] = 9.5 }), "exceeds service_p99_ms"},
		{"trailing data", string(validSnapshot(t)) + "{}", "not a JSON object"},
	}
	for _, tc := range cases {
		problems, err := checkMetrics(strings.NewReader(tc.input))
		if err != nil {
			t.Fatalf("%s: checkMetrics: %v", tc.name, err)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no problem containing %q; got %v", tc.name, tc.want, problems)
		}
	}
}

// TestCheckMetricsAfterTraffic runs real requests through a server so
// the counters are non-trivial, then validates what /v1/metrics
// actually returned — the closed-loop version of the CI smoke job.
func TestCheckMetricsAfterTraffic(t *testing.T) {
	s := daemon.NewServer(daemon.Config{Workers: 2, RetryAfter: time.Second})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := daemon.NewClient(hs.URL)
	req := daemon.EvalRequest{Workload: "CFRAC", Scale: 0.1, Policy: "full", Label: "metrics/traffic"}
	for i := 0; i < 3; i++ { // one cold, two memo hits
		if _, err := c.Eval(context.Background(), &req); err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
	}
	resp, err := hs.Client().Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	//dtbvet:ignore errsink -- test response body close: checkMetrics reads the body to EOF first
	defer resp.Body.Close()
	problems, err := checkMetrics(resp.Body)
	if err != nil {
		t.Fatalf("checkMetrics: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("live endpoint snapshot rejected: %v", problems)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.ColdEvals != 1 || snap.MemoHits != 2 {
		t.Fatalf("cold/memo = %d/%d, want 1/2", snap.ColdEvals, snap.MemoHits)
	}
}
