package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

// app runs the CLI's run() and returns its streams and exit code.
func app(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errs bytes.Buffer
	err := run(args, &out, &errs)
	return out.String(), errs.String(), cliio.ExitCode(err)
}

// smallEspresso is the fastest trace-producing invocation, shared by
// the happy-path and fault tests.
func smallEspresso(extra ...string) []string {
	return append([]string{"espresso", "-problems", "1", "-vars", "4", "-cubes", "4"}, extra...)
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"ghost", "-no-such-flag"},
		{"ghost", "-doc", "novel"},
		{"espresso", "-inject", "bogus@1"},
		{"eval", "-no-such-flag"},
	} {
		if _, _, code := app(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestEspressoWritesDecodableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "esp.dtbt")
	_, stderr, code := app(t, smallEspresso("-o", out)...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "espresso:") {
		t.Fatalf("summary missing from stderr: %q", stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := dtbgc.ReadTrace(f)
	if err != nil || len(events) == 0 {
		t.Fatalf("trace file: %d events, %v", len(events), err)
	}
}

func TestTraceToStdout(t *testing.T) {
	stdout, _, code := app(t, smallEspresso()...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	events, err := dtbgc.ReadTrace(strings.NewReader(stdout))
	if err != nil || len(events) == 0 {
		t.Fatalf("stdout stream: %d events, %v", len(events), err)
	}
}

// TestOutputFaultsExitNonzero is the silent-truncation satellite proof
// for the trace-writing subcommands: every fault class on the output
// must fail the command. The close-err cases are exactly the
// unchecked `defer f.Close()` bug — they exited 0 before the fix.
func TestOutputFaultsExitNonzero(t *testing.T) {
	dir := t.TempDir()
	for _, inject := range []string{"close-err", "write-err@100", "short-write@9"} {
		out := filepath.Join(dir, inject+".dtbt")
		var stdout, stderr bytes.Buffer
		err := run(smallEspresso("-inject", inject, "-o", out), &stdout, &stderr)
		if code := cliio.ExitCode(err); code != 1 {
			t.Errorf("%s: exit %d (err %v), want 1", inject, code, err)
		}
		if inject == "close-err" && !errors.Is(err, fault.ErrInjected) {
			t.Errorf("close failure surfaced as %v, want the injected error", err)
		}
	}
}
