// Command dtbapps runs the mini-applications — the stand-ins for the
// paper's GhostScript, Espresso, SIS and Cfrac workloads — on the
// simulated managed heap, and writes the allocation trace each run
// produces. Those traces can then drive the simulator via dtbsim.
//
// Usage:
//
//	dtbapps ghost   [-pages N] [-seed S] [-o trace.dtbt]
//	dtbapps espresso [-problems N] [-vars V] [-cubes C] [-seed S] [-o trace.dtbt]
//	dtbapps sis     [-gates N] [-latches L] [-vectors V] [-seed S] [-o trace.dtbt]
//	dtbapps cfrac   [-n NUMBER] [-o trace.dtbt]
//	dtbapps eval    [-progress] [-workers N] [-trigger BYTES] [-memmax BYTES] [-tracemax BYTES]
//
// The eval subcommand runs the full app-driven evaluation matrix
// (every mini-application's trace under all six collectors plus the
// baselines) and prints the paper's tables; -progress streams a
// human progress/summary line per run to stderr while it works.
// Apps are scheduled on a bounded worker pool (-workers, default
// GOMAXPROCS) and Ctrl-C cancels the evaluation at the next event
// boundary. -cpuprofile/-memprofile write pprof profiles of the
// evaluation for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
	"github.com/dtbgc/dtbgc/internal/apps/circuit"
	"github.com/dtbgc/dtbgc/internal/apps/logicmin"
	"github.com/dtbgc/dtbgc/internal/apps/psint"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var events []trace.Event
	var summary string
	var err error
	var out string

	switch os.Args[1] {
	case "eval":
		runEval(os.Args[2:])
		return
	case "ghost":
		fs := flag.NewFlagSet("ghost", flag.ExitOnError)
		pages := fs.Int("pages", 40, "pages to interpret")
		seed := fs.Uint64("seed", 1, "document seed")
		doc := fs.String("doc", "manual", "document type: manual (text-heavy) or thesis (graphics-heavy)")
		o := fs.String("o", "", "trace output file (default stdout)")
		fs.Parse(os.Args[2:])
		out = *o
		var src string
		switch *doc {
		case "manual":
			src = psint.GenerateDocument(*pages, *seed)
		case "thesis":
			src = psint.GenerateDrawing(*pages, *seed)
		default:
			err = fmt.Errorf("unknown document type %q", *doc)
		}
		if err == nil {
			var res *psint.Result
			res, err = psint.RunDocument(src)
			if res != nil {
				events = res.Events
				summary = fmt.Sprintf("ghost: %d pages, %d operations, checksum %.2f", res.Pages, res.OpCount, res.Checksum)
			}
		}
	case "espresso":
		fs := flag.NewFlagSet("espresso", flag.ExitOnError)
		problems := fs.Int("problems", 12, "PLA problems to minimize")
		vars := fs.Int("vars", 9, "inputs per PLA")
		cubes := fs.Int("cubes", 18, "ON cubes per PLA")
		outputs := fs.Int("outputs", 1, "outputs per PLA (multi-output minimizes each independently)")
		seed := fs.Uint64("seed", 1, "generator seed")
		o := fs.String("o", "", "trace output file (default stdout)")
		fs.Parse(os.Args[2:])
		out = *o
		plas := make([]string, *problems)
		var res *logicmin.Result
		if *outputs <= 1 {
			for i := range plas {
				plas[i] = logicmin.GeneratePLA(*vars, *cubes, 3, *seed+uint64(i))
			}
			res, err = logicmin.RunBatch(plas, 500)
		} else {
			for i := range plas {
				plas[i] = logicmin.GenerateMultiPLA(*vars, *outputs, *cubes, *seed+uint64(i))
			}
			res, err = logicmin.RunMultiBatch(plas, 500)
		}
		if res != nil {
			events = res.Events
			summary = fmt.Sprintf("espresso: %d problems, %d cubes in, %d out", *problems, res.CubesIn, res.CubesOut)
		}
	case "sis":
		fs := flag.NewFlagSet("sis", flag.ExitOnError)
		gates := fs.Int("gates", 600, "gates in the synthesized circuit")
		latches := fs.Int("latches", 16, "latches")
		vectors := fs.Int("vectors", 1024, "random verification vectors")
		seed := fs.Uint64("seed", 1, "circuit seed")
		o := fs.String("o", "", "trace output file (default stdout)")
		fs.Parse(os.Args[2:])
		out = *o
		blif := circuit.GenerateBLIF(24, *gates, *latches, *seed)
		var res *circuit.Result
		res, err = circuit.Run(blif, *vectors)
		if res != nil {
			events = res.Events
			summary = fmt.Sprintf("sis: %d nodes, %d removed by sweep, signature %x", res.Gates, res.Removed, res.Signature)
		}
	case "cfrac":
		fs := flag.NewFlagSet("cfrac", flag.ExitOnError)
		n := fs.String("n", "998244359987710471", "number to factor")
		o := fs.String("o", "", "trace output file (default stdout)")
		fs.Parse(os.Args[2:])
		out = *o
		var f1, f2 string
		f1, f2, events, err = cfrac.Factor(*n, cfrac.Config{})
		if err == nil {
			summary = fmt.Sprintf("cfrac: %s = %s * %s", *n, f1, f2)
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbapps:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, summary)

	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbapps:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := dtbgc.WriteTrace(dst, events); err != nil {
		fmt.Fprintln(os.Stderr, "dtbapps:", err)
		os.Exit(1)
	}
}

// runEval is the app-driven evaluation: each mini-application's
// recorded trace replayed under all six collectors plus the
// baselines, with optional live progress reporting.
func runEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	progress := fs.Bool("progress", false, "stream per-run progress and summaries to stderr")
	workers := fs.Int("workers", 0, "apps evaluated concurrently (0 = GOMAXPROCS)")
	trigger := fs.Uint64("trigger", 0, "scavenge trigger in bytes (default 64 KB)")
	memMax := fs.Uint64("memmax", 0, "DTBMEM memory constraint in bytes (default 256 KB)")
	traceMax := fs.Uint64("tracemax", 0, "FEEDMED/DTBFM trace budget in bytes (default 16 KB)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the evaluation to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile taken after the evaluation to FILE")
	fs.Parse(args)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtbapps:", err)
		os.Exit(1)
	}
	opts := dtbgc.AppEvalOptions{
		TriggerBytes:  *trigger,
		MemMaxBytes:   *memMax,
		TraceMaxBytes: *traceMax,
		Workers:       *workers,
	}
	if *progress {
		opts.Probe = dtbgc.NewProgressReporter(os.Stderr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopCPUProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	ev, err := dtbgc.RunAppEvaluationContext(ctx, opts)
	stopCPUProfile()
	if err != nil {
		fail(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
	fmt.Println(ev.Table2())
	fmt.Println(ev.Table3())
	fmt.Println(ev.Table4())
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dtbapps {ghost|espresso|sis|cfrac|eval} [flags]")
	os.Exit(2)
}
