// Command dtbapps runs the mini-applications — the stand-ins for the
// paper's GhostScript, Espresso, SIS and Cfrac workloads — on the
// simulated managed heap, and writes the allocation trace each run
// produces. Those traces can then drive the simulator via dtbsim.
//
// Usage:
//
//	dtbapps ghost   [-pages N] [-seed S] [-o trace.dtbt]
//	dtbapps espresso [-problems N] [-vars V] [-cubes C] [-seed S] [-o trace.dtbt]
//	dtbapps sis     [-gates N] [-latches L] [-vectors V] [-seed S] [-o trace.dtbt]
//	dtbapps cfrac   [-n NUMBER] [-o trace.dtbt]
//	dtbapps eval    [-progress] [-workers N] [-trigger BYTES] [-memmax BYTES] [-tracemax BYTES]
//
// The eval subcommand runs the full app-driven evaluation matrix
// (every mini-application's trace under all six collectors plus the
// baselines) and prints the paper's tables; -progress streams a
// human progress/summary line per run to stderr while it works.
// Apps are scheduled on a bounded worker pool (-workers, default
// GOMAXPROCS) and Ctrl-C cancels the evaluation at the next event
// boundary. -cpuprofile/-memprofile write pprof profiles of the
// evaluation for `go tool pprof`.
//
// Every output path is checked through to Close — a full disk fails
// the command with a non-zero exit instead of leaving a silently
// truncated trace — and profile stops run on failure paths too. The
// trace-writing subcommands and eval take -inject SPEC to schedule
// deterministic I/O faults (see internal/fault). Exit status: 0
// success, 1 operational failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
	"github.com/dtbgc/dtbgc/internal/apps/circuit"
	"github.com/dtbgc/dtbgc/internal/apps/logicmin"
	"github.com/dtbgc/dtbgc/internal/apps/psint"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dtbapps:", err)
	}
	os.Exit(cliio.ExitCode(err))
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return cliio.Usagef("usage: dtbapps {ghost|espresso|sis|cfrac|eval} [flags]")
	}

	if args[0] == "eval" {
		return runEval(args[1:], stdout, stderr)
	}

	var events []trace.Event
	var summary string
	var err error
	var out, inject string

	switch cmd, rest := args[0], args[1:]; cmd {
	case "ghost":
		fs := newFlagSet("ghost", stderr)
		pages := fs.Int("pages", 40, "pages to interpret")
		seed := fs.Uint64("seed", 1, "document seed")
		doc := fs.String("doc", "manual", "document type: manual (text-heavy) or thesis (graphics-heavy)")
		o := fs.String("o", "", "trace output file (default stdout)")
		inj := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
		if err := parseArgs(fs, rest); err != nil {
			return err
		}
		out, inject = *o, *inj
		var src string
		switch *doc {
		case "manual":
			src = psint.GenerateDocument(*pages, *seed)
		case "thesis":
			src = psint.GenerateDrawing(*pages, *seed)
		default:
			return cliio.Usagef("unknown document type %q", *doc)
		}
		var res *psint.Result
		res, err = psint.RunDocument(src)
		if res != nil {
			events = res.Events
			summary = fmt.Sprintf("ghost: %d pages, %d operations, checksum %.2f", res.Pages, res.OpCount, res.Checksum)
		}
	case "espresso":
		fs := newFlagSet("espresso", stderr)
		problems := fs.Int("problems", 12, "PLA problems to minimize")
		vars := fs.Int("vars", 9, "inputs per PLA")
		cubes := fs.Int("cubes", 18, "ON cubes per PLA")
		outputs := fs.Int("outputs", 1, "outputs per PLA (multi-output minimizes each independently)")
		seed := fs.Uint64("seed", 1, "generator seed")
		o := fs.String("o", "", "trace output file (default stdout)")
		inj := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
		if err := parseArgs(fs, rest); err != nil {
			return err
		}
		out, inject = *o, *inj
		plas := make([]string, *problems)
		var res *logicmin.Result
		if *outputs <= 1 {
			for i := range plas {
				plas[i] = logicmin.GeneratePLA(*vars, *cubes, 3, *seed+uint64(i))
			}
			res, err = logicmin.RunBatch(plas, 500)
		} else {
			for i := range plas {
				plas[i] = logicmin.GenerateMultiPLA(*vars, *outputs, *cubes, *seed+uint64(i))
			}
			res, err = logicmin.RunMultiBatch(plas, 500)
		}
		if res != nil {
			events = res.Events
			summary = fmt.Sprintf("espresso: %d problems, %d cubes in, %d out", *problems, res.CubesIn, res.CubesOut)
		}
	case "sis":
		fs := newFlagSet("sis", stderr)
		gates := fs.Int("gates", 600, "gates in the synthesized circuit")
		latches := fs.Int("latches", 16, "latches")
		vectors := fs.Int("vectors", 1024, "random verification vectors")
		seed := fs.Uint64("seed", 1, "circuit seed")
		o := fs.String("o", "", "trace output file (default stdout)")
		inj := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
		if err := parseArgs(fs, rest); err != nil {
			return err
		}
		out, inject = *o, *inj
		blif := circuit.GenerateBLIF(24, *gates, *latches, *seed)
		var res *circuit.Result
		res, err = circuit.Run(blif, *vectors)
		if res != nil {
			events = res.Events
			summary = fmt.Sprintf("sis: %d nodes, %d removed by sweep, signature %x", res.Gates, res.Removed, res.Signature)
		}
	case "cfrac":
		fs := newFlagSet("cfrac", stderr)
		n := fs.String("n", "998244359987710471", "number to factor")
		o := fs.String("o", "", "trace output file (default stdout)")
		inj := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
		if err := parseArgs(fs, rest); err != nil {
			return err
		}
		out, inject = *o, *inj
		var f1, f2 string
		f1, f2, events, err = cfrac.Factor(*n, cfrac.Config{})
		if err == nil {
			summary = fmt.Sprintf("cfrac: %s = %s * %s", *n, f1, f2)
		}
	default:
		return cliio.Usagef("usage: dtbapps {ghost|espresso|sis|cfrac|eval} [flags]")
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, summary)

	plan, err := injectPlan(inject)
	if err != nil {
		return err
	}
	return cliio.WriteTo(out, stdout, plan, func(w io.Writer) error {
		return dtbgc.WriteTrace(w, events)
	})
}

// runEval is the app-driven evaluation: each mini-application's
// recorded trace replayed under all six collectors plus the
// baselines, with optional live progress reporting. It returns through
// a single error path so the CPU profile stops — and its file's close
// is checked — on failures too.
func runEval(args []string, stdout, stderr io.Writer) (err error) {
	fs := newFlagSet("eval", stderr)
	progress := fs.Bool("progress", false, "stream per-run progress and summaries to stderr")
	workers := fs.Int("workers", 0, "apps evaluated concurrently (0 = GOMAXPROCS)")
	trigger := fs.Uint64("trigger", 0, "scavenge trigger in bytes (default 64 KB)")
	memMax := fs.Uint64("memmax", 0, "DTBMEM memory constraint in bytes (default 256 KB)")
	traceMax := fs.Uint64("tracemax", 0, "FEEDMED/DTBFM trace budget in bytes (default 16 KB)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the evaluation to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile taken after the evaluation to FILE")
	inject := fs.String("inject", "", "schedule deterministic I/O faults on the outputs (see internal/fault)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	plan, err := injectPlan(*inject)
	if err != nil {
		return err
	}

	opts := dtbgc.AppEvalOptions{
		TriggerBytes:  *trigger,
		MemMaxBytes:   *memMax,
		TraceMaxBytes: *traceMax,
		Workers:       *workers,
	}
	if *progress {
		opts.Probe = dtbgc.NewProgressReporter(stderr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		profOut, perr := cliio.Create(*cpuprofile, nil, plan)
		if perr != nil {
			return perr
		}
		if perr := pprof.StartCPUProfile(profOut); perr != nil {
			//dtbvet:ignore errsink -- cleanup after StartCPUProfile failed: perr wins and nothing was written yet
			profOut.Close()
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := profOut.Close(); err == nil {
				err = cerr
			}
		}()
	}
	ev, err := dtbgc.RunAppEvaluationContext(ctx, opts)
	if err != nil {
		return err
	}
	if *memprofile != "" {
		err := cliio.WriteTo(*memprofile, nil, plan, func(w io.Writer) error {
			runtime.GC() // settle allocations so the profile shows retained heap
			return pprof.WriteHeapProfile(w)
		})
		if err != nil {
			return err
		}
	}
	return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
		fmt.Fprintln(w, ev.Table2())
		fmt.Fprintln(w, ev.Table3())
		fmt.Fprintln(w, ev.Table4())
		return nil
	})
}

// newFlagSet builds a subcommand flag set that reports parse problems
// as errors (usage exit) instead of exiting past the close checks.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseArgs finishes a subcommand flag parse, folding flag errors into
// the shared exit discipline.
func parseArgs(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	return nil
}

// injectPlan parses a subcommand's -inject value.
func injectPlan(spec string) (*fault.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	p, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, &cliio.UsageError{Err: err}
	}
	return p, nil
}
