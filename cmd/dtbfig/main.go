// Command dtbfig regenerates the paper's Figure 2 — memory in use
// over execution time — as CSV: one series for the chosen collector,
// one for the live-byte floor.
//
// Usage:
//
//	dtbfig [-workload "GHOST(1)"] [-collector Full] [-scale F] [-points N] > fig2.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	workloadName := flag.String("workload", "GHOST(1)", "paper workload name")
	collector := flag.String("collector", "DtbMem", "collector column (Full, Fixed1, Fixed4, DtbMem, FeedMed, DtbFM, NoGC)")
	scale := flag.Float64("scale", 0.25, "workload scale factor")
	points := flag.Int("points", 2000, "maximum points per series")
	trigger := flag.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	ascii := flag.Bool("ascii", false, "render a text chart instead of CSV")
	flag.Parse()

	w, err := dtbgc.LookupWorkload(*workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbfig:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ev, err := dtbgc.RunPaperEvaluationContext(ctx, dtbgc.EvalOptions{
		Scale:        *scale,
		TriggerBytes: *trigger,
		Profiles:     []dtbgc.Workload{w},
		RecordCurves: true,
		CurvePoints:  *points,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbfig:", err)
		os.Exit(1)
	}
	var out string
	if *ascii {
		out, err = ev.Figure2Ascii(ev.Runs[0].Workload.Name, *collector, 100, 24)
	} else {
		out, err = ev.Figure2(ev.Runs[0].Workload.Name, *collector)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbfig:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
