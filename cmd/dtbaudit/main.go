// Command dtbaudit runs the correctness harness: the mutation
// self-test (proving the checker can fail), then the invariant auditor
// and differential oracle over the paper workloads × all eight
// collectors (six Table-1 policies plus the NoGC and Live baselines).
//
// Usage:
//
//	dtbaudit                                # every paper workload, paper scale
//	dtbaudit -workload "ESPRESSO(2)"        # one workload
//	dtbaudit -scale 0.1 -workers 2          # faster, smaller runs
//	dtbaudit -seed 7                        # perturbed trace family
//	dtbaudit -mutate surviving-skew         # seed a fault; MUST exit non-zero
//
// For every workload the harness replays the trace through the fast
// paths (bucketed boundary queries, single-pass fan-out) under the
// live invariant auditor, re-runs every collector against the naive
// references (O(n) tail scans, solo runs, streamed chunked decoding),
// and diffs Result, History and telemetry bit for bit.
//
// The exit code is the contract: 0 means no violations and no diffs, 1
// means the audit found problems, 2 means the harness itself could not
// run. Under -mutate a fault is seeded into the auditor's view, so
// exit 1 is the expected outcome — an exit of 0 means the auditor is
// blind to that fault (CI inverts the status to catch exactly this).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/dtbgc/dtbgc/internal/audit"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	workloadName := flag.String("workload", "", `audit one paper workload, e.g. "GHOST(1)", ESPRESSO(2), SIS, CFRAC (default: all six)`)
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
	trigger := flag.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	traceMax := flag.Uint64("tracemax", 50*1024, "FEEDMED/DTBFM trace budget in bytes")
	memMax := flag.Uint64("memmax", 3000*1024, "DTBMEM memory constraint in bytes")
	seed := flag.Uint64("seed", 0, "XOR this into every workload's generator seed (0 = the calibrated traces)")
	workers := flag.Int("workers", 0, "workloads audited concurrently (0 = GOMAXPROCS)")
	mutate := flag.String("mutate", "", fmt.Sprintf("seed this fault into the auditor's view and expect it to be caught %v", audit.Mutations()))
	noSelfTest := flag.Bool("noselftest", false, "skip the mutation self-test that precedes the audit")
	verbose := flag.Bool("v", false, "print every violation and diff, not just the first few per workload")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dtbaudit:", err)
		return 2
	}
	if flag.NArg() > 0 {
		return fail(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}

	opts := audit.Options{
		Scale:         *scale,
		TriggerBytes:  *trigger,
		TraceMaxBytes: *traceMax,
		MemMaxBytes:   *memMax,
	}

	profiles := workload.PaperProfiles()
	if *workloadName != "" {
		p, err := workload.ByName(*workloadName)
		if err != nil {
			return fail(err)
		}
		profiles = []workload.Profile{p}
	}
	for i := range profiles {
		profiles[i].Seed ^= *seed
	}

	// -mutate: a deliberately corrupted run. Violations are the
	// expected outcome here; a clean exit means the auditor is blind.
	if *mutate != "" {
		kind, err := audit.ParseMutation(*mutate)
		if err != nil {
			return fail(err)
		}
		_, violations, err := audit.MutatedRun(profiles[0], opts, kind)
		if err != nil {
			return fail(err)
		}
		if len(violations) == 0 {
			fmt.Printf("mutation %q NOT caught: the auditor is blind to it\n", kind)
			return 0
		}
		fmt.Printf("mutation %q caught: %d violation(s)\n", kind, len(violations))
		printFindings(violations, nil, *verbose)
		return 1
	}

	// Prove the checker can fail before trusting its green.
	if !*noSelfTest {
		if err := audit.SelfTest(profiles[0], opts); err != nil {
			return fail(err)
		}
		fmt.Printf("self-test: all %d seeded mutations caught\n", len(audit.Mutations()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reports := make([]*audit.Report, len(profiles))
	jobs := make([]engine.Job, len(profiles))
	for i, p := range profiles {
		i, p := i, p
		jobs[i] = func(ctx context.Context) error {
			rep, err := audit.AuditWorkload(ctx, p, opts)
			reports[i] = rep
			return err
		}
	}
	if err := engine.RunJobs(ctx, *workers, jobs); err != nil {
		return fail(err)
	}

	dirty := false
	for _, rep := range reports {
		status := "ok"
		if !rep.Clean() {
			status = "FAIL"
			dirty = true
		}
		fmt.Printf("%-12s %s: %d collectors, %d runs, %d violation(s), %d diff(s)\n",
			rep.Workload, status, len(rep.Collectors), rep.Runs, len(rep.Violations), len(rep.Diffs))
		printFindings(rep.Violations, rep.Diffs, *verbose)
	}
	if dirty {
		return 1
	}
	return 0
}

// printFindings lists violations and diffs, truncating unless verbose.
func printFindings(violations []audit.Violation, diffs []string, verbose bool) {
	const show = 10
	lines := make([]string, 0, len(violations)+len(diffs))
	for _, v := range violations {
		lines = append(lines, v.String())
	}
	lines = append(lines, diffs...)
	for i, l := range lines {
		if !verbose && i == show {
			fmt.Printf("  ... and %d more (use -v for all)\n", len(lines)-show)
			break
		}
		fmt.Printf("  %s\n", l)
	}
}
