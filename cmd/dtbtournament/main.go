// Command dtbtournament runs the policy tournament: every roster
// policy — the paper's Table-1 set plus the adaptive bandit and
// gradient controllers — over the paper workload corpus and a seed
// sweep, fully paired, ranked by composite memory/CPU cost with
// paired permutation tests and Benjamini–Hochberg FDR control.
//
//	dtbtournament                       # default roster × paper corpus × 8 seeds
//	dtbtournament -workloads ghost1 -seeds 4 -scale 0.02
//	dtbtournament -policies full,fixed2,bandit:eps=0.1 -json report.json
//	dtbtournament -stability            # also require split-half rank stability
//
// Exit status: 0 on a clean tournament, 1 if -stability finds the
// ranking unstable, 2 on configuration or harness error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/tournament"
	"github.com/dtbgc/dtbgc/internal/workload"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload names (default: all six paper profiles)")
		policies  = flag.String("policies", "", "comma-separated policy specs (default roster: "+strings.Join(tournament.DefaultRoster(), ",")+")")
		seeds     = flag.Int("seeds", 8, "seed sweep size; 8+ needed for p < 0.05 claims")
		scale     = flag.Float64("scale", 0.05, "workload scale factor")
		trigger   = flag.Uint64("trigger", 256*1024, "scavenge trigger bytes")
		alpha     = flag.Float64("alpha", 0.05, "significance level")
		workers   = flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
		jsonPath  = flag.String("json", "", "write the full report as JSON to this file")
		mdPath    = flag.String("md", "", "write the markdown report to this file ('-' = stdout only)")
		stability = flag.Bool("stability", false, "fail (exit 1) unless both halves of the seed sweep crown the same leader")
		quiet     = flag.Bool("q", false, "suppress the markdown report on stdout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fail("unexpected arguments %q (known policies: %s)", flag.Args(), strings.Join(core.KnownPolicies(), ", "))
	}

	opts := tournament.Options{
		Scale:        *scale,
		TriggerBytes: *trigger,
		Alpha:        *alpha,
		Workers:      *workers,
		Seeds:        tournament.SweepSeeds(*seeds),
	}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			prof, err := workload.ByName(name)
			if err != nil {
				fail("%v", err)
			}
			opts.Workloads = append(opts.Workloads, prof)
		}
	}
	if *policies != "" {
		opts.Policies = strings.Split(*policies, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := tournament.Run(ctx, opts)
	if err != nil {
		fail("%v", err)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("encoding report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
	}
	if *mdPath != "" && *mdPath != "-" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fail("%v", err)
		}
		if err := res.WriteMarkdown(f); err != nil {
			fail("writing report: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
	if !*quiet {
		if err := res.WriteMarkdown(os.Stdout); err != nil {
			fail("writing report: %v", err)
		}
	}

	if *stability {
		ok, first, second := res.SplitHalfStable()
		if !ok {
			fmt.Fprintf(os.Stderr, "dtbtournament: RANK UNSTABLE: seed halves crown %s vs %s — the leader is noise at this sweep size\n", first, second)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dtbtournament: ranking stable: both seed halves crown %s\n", first)
	}
}

// fail reports a configuration or harness error and exits 2, keeping
// exit 1 reserved for a failed stability check. Mirrors dtbaudit.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dtbtournament: "+format+"\n", args...)
	os.Exit(2)
}
