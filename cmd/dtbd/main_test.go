package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/daemon"
)

// startDaemon serves a real daemon on loopback for CLI runs.
func startDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := daemon.NewServer(daemon.Config{Workers: 2})
	s.Start(ln)
	t.Cleanup(func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return ln.Addr().String()
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"eval", "-policy", "full"}, // no source
		{"eval", "-workload", "CFRAC", "-trace", "x.dtbt", "-policy", "full"},
		{"eval", "-workload", "CFRAC", "-policy", "full", "-baseline", "live"},
		{"eval", "-trace", "x.dtbt", "-scale", "0.5", "-policy", "full"},
		{"serve", "-addr", "127.0.0.1:0", "-socket", "/tmp/x.sock"},
		{"serve", "positional"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		err := run(args, &out, &errBuf)
		if cliio.ExitCode(err) != 2 {
			t.Errorf("run(%q) = %v (exit %d), want usage error (exit 2)", args, err, cliio.ExitCode(err))
		}
	}
}

// TestEvalSummaryMatchesDirectRun drives the workload path through
// the real daemon and checks the printed summary equals the replicated
// printSummary over a direct library run — the CLI's flag mapping and
// the daemon's result must both be faithful for the bytes to agree.
func TestEvalSummaryMatchesDirectRun(t *testing.T) {
	addr := startDaemon(t)
	var out, errBuf bytes.Buffer
	err := run([]string{"eval", "-addr", addr,
		"-workload", "CFRAC", "-scale", "0.1", "-policy", "dtbfm:50k"}, &out, &errBuf)
	if err != nil {
		t.Fatalf("eval: %v (stderr: %s)", err, errBuf.String())
	}

	events := dtbgc.WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	policy, perr := dtbgc.ParsePolicy("dtbfm:50k")
	if perr != nil {
		t.Fatalf("ParsePolicy: %v", perr)
	}
	res, serr := dtbgc.Simulate(events, dtbgc.SimOptions{
		Policy:       policy,
		TriggerBytes: 1 << 20,
	})
	if serr != nil {
		t.Fatalf("Simulate: %v", serr)
	}
	var want bytes.Buffer
	printSummary(&want, res)
	if out.String() != want.String() {
		t.Fatalf("dtbd eval summary differs from direct run:\ngot:\n%s\nwant:\n%s", out.String(), want.String())
	}
}

// TestEvalTraceAutoUpload evaluates a trace file twice: the first run
// transparently uploads after the daemon's 404, the second addresses
// the cached tape by digest (no re-upload), and both print the same
// bytes.
func TestEvalTraceAutoUpload(t *testing.T) {
	addr := startDaemon(t)
	events := dtbgc.WorkloadByName("GHOST(1)").Scale(0.05).MustGenerate()
	path := filepath.Join(t.TempDir(), "ghost1.dtbt")
	var enc bytes.Buffer
	if err := dtbgc.WriteTrace(&enc, events); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := os.WriteFile(path, enc.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	var first, second, errBuf bytes.Buffer
	args := []string{"eval", "-addr", addr, "-trace", path, "-policy", "full"}
	if err := run(args, &first, &errBuf); err != nil {
		t.Fatalf("first trace eval: %v (stderr: %s)", err, errBuf.String())
	}
	if err := run(args, &second, &errBuf); err != nil {
		t.Fatalf("second trace eval: %v (stderr: %s)", err, errBuf.String())
	}
	if first.String() != second.String() {
		t.Fatalf("trace eval output changed between runs:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}

	var status bytes.Buffer
	if err := run([]string{"status", "-addr", addr, "-json"}, &status, &errBuf); err != nil {
		t.Fatalf("status: %v", err)
	}
	var snap daemon.MetricsSnapshot
	if err := json.Unmarshal(status.Bytes(), &snap); err != nil {
		t.Fatalf("decoding status JSON: %v", err)
	}
	if snap.TraceUploads != 1 {
		t.Errorf("trace_uploads = %d, want exactly 1 (second eval must reuse the digest)", snap.TraceUploads)
	}
	if snap.MemoHits != 1 || snap.ColdEvals != 1 {
		t.Errorf("memo_hits/cold_evals = %d/%d, want 1/1", snap.MemoHits, snap.ColdEvals)
	}
	if snap.MemoHits+snap.ColdEvals != snap.EvalsServed {
		t.Errorf("serving identity broken: %d + %d != %d", snap.MemoHits, snap.ColdEvals, snap.EvalsServed)
	}
}

// TestEvalTelemetryFile writes the run's telemetry stream to a file
// and spot-checks the JSON-lines shape.
func TestEvalTelemetryFile(t *testing.T) {
	addr := startDaemon(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errBuf bytes.Buffer
	err := run([]string{"eval", "-addr", addr,
		"-workload", "CFRAC", "-scale", "0.1", "-policy", "full",
		"-label", "cli/tel", "-telemetry", path}, &out, &errBuf)
	if err != nil {
		t.Fatalf("eval: %v (stderr: %s)", err, errBuf.String())
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("reading telemetry: %v", rerr)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("telemetry has %d lines, want at least run_start and run_finish", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("telemetry line %d is not JSON: %v", i+1, err)
		}
		if obj["label"] != "cli/tel" {
			t.Fatalf("telemetry line %d label = %v, want cli/tel", i+1, obj["label"])
		}
	}
	if !strings.Contains(out.String(), "collector:") {
		t.Fatalf("summary missing from stdout:\n%s", out.String())
	}
}

// TestStatusHuman sanity-checks the human status rendering.
func TestStatusHuman(t *testing.T) {
	addr := startDaemon(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"status", "-addr", addr}, &out, &errBuf); err != nil {
		t.Fatalf("status: %v", err)
	}
	for _, want := range []string{"evals served:", "memo hit rate:", "tape cache:", "service p50/p99:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("status output missing %q:\n%s", want, out.String())
		}
	}
}
