// Command dtbd is the simulation-as-a-service daemon and its client:
// a long-running process that answers policy-evaluation requests over
// HTTP/JSON with results bit-identical to the dtbsim CLI, amortizing
// trace decoding and whole evaluations across requests through the
// daemon's content-addressed caches.
//
// Usage:
//
//	dtbd serve -addr 127.0.0.1:7341 [-workers N] [-queue N] [-tape-cache-mb MB] [-memo N]
//	dtbd serve -socket /run/dtbd.sock
//	dtbd eval -addr HOST:PORT -workload CFRAC -policy dtbfm:50k [-scale F] [-trigger BYTES]
//	dtbd eval -addr HOST:PORT -trace events.dtbt -policy full [-telemetry FILE] [-json]
//	dtbd status -addr HOST:PORT [-json]
//
// serve runs until SIGINT/SIGTERM, then drains: the listener closes
// immediately, in-flight evaluations run to completion, and the
// process exits 0. Overload is a 429 with a Retry-After hint, never a
// queue that grows without bound.
//
// eval prints the same summary block dtbsim prints for the same run —
// byte-identical, which CI enforces by diffing the two — or the full
// result JSON with -json. A -trace file is content-addressed: eval
// sends its digest first and uploads the bytes only when the daemon
// does not already hold them, so repeated evaluations of one trace
// ship sha256 instead of gigabytes.
//
// Exit status: 0 on success, 1 on operational failure (including a
// 429 rejection), 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/daemon"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dtbd:", err)
	}
	os.Exit(cliio.ExitCode(err))
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return cliio.Usagef("usage: dtbd <serve|eval|status> [flags] (-h for help)")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], stdout, stderr)
	case "eval":
		return runEval(args[1:], stdout, stderr)
	case "status":
		return runStatus(args[1:], stdout, stderr)
	default:
		return cliio.Usagef("unknown subcommand %q (serve, eval or status)", args[0])
	}
}

func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dtbd serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7341", "TCP listen address")
	socket := fs.String("socket", "", "unix-domain socket path to listen on instead of TCP")
	workers := fs.Int("workers", 0, "concurrent evaluation limit (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "waiting evaluations beyond the running ones before 429 (0 = 2x workers)")
	tapeMB := fs.Int64("tape-cache-mb", 256, "decoded-tape cache budget in MB")
	memo := fs.Int("memo", 4096, "result memo table entries")
	maxTraceMB := fs.Int64("max-trace-mb", 1024, "largest accepted trace upload in MB")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long Shutdown waits for in-flight evaluations")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	if err := cliio.Conflicts(fs,
		cliio.Conflict{A: "addr", B: "socket", Reason: "listen on TCP or a unix socket, not both"},
	); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cliio.Usagef("serve takes no positional arguments, got %q", fs.Args())
	}

	network, bind := "tcp", *addr
	if *socket != "" {
		network, bind = "unix", *socket
	}
	ln, err := net.Listen(network, bind)
	if err != nil {
		return err
	}
	s := daemon.NewServer(daemon.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		TapeCacheBytes: *tapeMB << 20,
		MemoEntries:    *memo,
		MaxTraceBytes:  *maxTraceMB << 20,
	})
	s.Start(ln)
	fmt.Fprintf(stderr, "dtbd: listening on %s %s\n", network, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal during the drain kills the process normally

	fmt.Fprintln(stderr, "dtbd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stderr, "dtbd: drained, exiting")
	return nil
}

func runEval(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("dtbd eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7341", `daemon address (HOST:PORT or "unix:PATH")`)
	policySpec := fs.String("policy", "", "collector policy (full, fixed1, fixed4, feedmed:<b>, dtbfm:<b>, dtbmem:<b>)")
	baseline := fs.String("baseline", "", "baseline instead of a policy: nogc or live")
	workloadName := fs.String("workload", "", `paper workload name, e.g. "GHOST(1)", ESPRESSO(2), SIS, CFRAC`)
	traceFile := fs.String("trace", "", "binary trace file to evaluate (uploaded once, then addressed by digest)")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	trigger := fs.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	opportunistic := fs.Bool("opportunistic", false, "also scavenge at trace marks (program quiescent points)")
	pageFrames := fs.Int("pages", 0, "enable the VM model with this many resident 4 KB pages")
	seed := fs.Uint64("seed", 0, "adaptive-policy seed")
	label := fs.String("label", "", "run label (feeds telemetry lines and adaptive seed derivation)")
	telemetry := fs.String("telemetry", "", "write the run's JSON-lines telemetry to FILE (- for stdout)")
	deadlineMs := fs.Int64("deadline-ms", 0, "server-side evaluation deadline in milliseconds (0 = none)")
	jsonOut := fs.Bool("json", false, "print the full eval response JSON instead of the summary")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	if err := cliio.Conflicts(fs,
		cliio.Conflict{A: "policy", B: "baseline", Reason: "a run is driven by one or the other"},
		cliio.Conflict{A: "workload", B: "trace", Reason: "choose one event source"},
		cliio.Conflict{A: "scale", B: "trace", Reason: "-scale applies to generated workloads and cannot rescale a recorded trace"},
	); err != nil {
		return err
	}
	if *workloadName == "" && *traceFile == "" {
		return cliio.Usagef("need -workload or -trace")
	}

	req := daemon.EvalRequest{
		Policy:        *policySpec,
		Baseline:      *baseline,
		TriggerBytes:  *trigger,
		PolicySeed:    *seed,
		Opportunistic: *opportunistic,
		PageFrames:    *pageFrames,
		Label:         *label,
		Telemetry:     *telemetry != "",
		DeadlineMs:    *deadlineMs,
	}
	var traceData []byte
	if *traceFile != "" {
		traceData, err = os.ReadFile(*traceFile)
		if err != nil {
			return err
		}
		// Decode locally for the content digest (and to fail fast on a
		// damaged file) — the daemon is only sent bytes it can serve.
		digest, _, derr := dtbgc.DigestTrace(bytes.NewReader(traceData))
		if derr != nil {
			return fmt.Errorf("%s: %w", *traceFile, derr)
		}
		req.TraceDigest = digest
	} else {
		req.Workload = *workloadName
		req.Scale = *scale
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := daemon.NewClient(*addr)
	resp, err := c.Eval(ctx, &req)
	var unknown *daemon.UnknownTraceError
	if errors.As(err, &unknown) && traceData != nil {
		// First contact for this trace: ship the bytes, then retry the
		// digest-addressed request.
		if _, uerr := c.UploadTrace(ctx, bytes.NewReader(traceData)); uerr != nil {
			return fmt.Errorf("uploading %s: %w", *traceFile, uerr)
		}
		resp, err = c.Eval(ctx, &req)
	}
	if err != nil {
		return err
	}

	if *telemetry != "" {
		werr := cliio.WriteTo(*telemetry, stdout, nil, func(w io.Writer) error {
			_, werr := io.WriteString(w, resp.Telemetry)
			return werr
		})
		if werr != nil {
			return fmt.Errorf("telemetry: %w", werr)
		}
	}
	return cliio.WriteTo("-", stdout, nil, func(w io.Writer) error {
		if *jsonOut {
			raw, merr := json.MarshalIndent(resp, "", "  ")
			if merr != nil {
				return merr
			}
			_, werr := fmt.Fprintf(w, "%s\n", raw)
			return werr
		}
		var res dtbgc.Result
		if uerr := json.Unmarshal(resp.Result, &res); uerr != nil {
			return fmt.Errorf("decoding result: %w", uerr)
		}
		printSummary(w, &res)
		return nil
	})
}

func runStatus(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dtbd status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7341", `daemon address (HOST:PORT or "unix:PATH")`)
	jsonOut := fs.Bool("json", false, "print the raw metrics snapshot JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := daemon.NewClient(*addr)
	snap, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	return cliio.WriteTo("-", stdout, nil, func(w io.Writer) error {
		if *jsonOut {
			raw, merr := json.MarshalIndent(snap, "", "  ")
			if merr != nil {
				return merr
			}
			_, werr := fmt.Fprintf(w, "%s\n", raw)
			return werr
		}
		hit := 0.0
		if snap.EvalsServed > 0 {
			hit = 100 * float64(snap.MemoHits) / float64(snap.EvalsServed)
		}
		fmt.Fprintf(w, "uptime:          %.0f s\n", snap.UptimeSeconds)
		fmt.Fprintf(w, "evals served:    %d (%d memo, %d cold of which %d on cached tapes)\n",
			snap.EvalsServed, snap.MemoHits, snap.ColdEvals, snap.TapeHits)
		fmt.Fprintf(w, "memo hit rate:   %.1f%%\n", hit)
		fmt.Fprintf(w, "rejected/failed: %d / %d\n", snap.Rejected, snap.Failed)
		fmt.Fprintf(w, "load:            %d running, %d queued (workers %d, queue %d)\n",
			snap.InFlight, snap.Queued, snap.Workers, snap.QueueDepth)
		fmt.Fprintf(w, "tape cache:      %d traces, %.1f MB\n",
			snap.TapeCacheTraces, float64(snap.TapeCacheBytes)/(1<<20))
		fmt.Fprintf(w, "memo entries:    %d\n", snap.MemoEntries)
		fmt.Fprintf(w, "service p50/p99: %.2f / %.2f ms\n", snap.ServiceP50Ms, snap.ServiceP99Ms)
		return nil
	})
}

// printSummary is dtbsim's summary block, replicated byte for byte —
// CI diffs the two tools' stdout over the same run to keep them from
// drifting.
func printSummary(w io.Writer, res *dtbgc.Result) {
	fmt.Fprintf(w, "collector:      %s\n", res.Collector)
	fmt.Fprintf(w, "total alloc:    %.0f KB over %.1f s (model time)\n", float64(res.TotalAlloc)/1024, res.ExecSeconds)
	fmt.Fprintf(w, "memory mean/max: %.0f / %.0f KB\n", res.MemMeanBytes/1024, res.MemMaxBytes/1024)
	fmt.Fprintf(w, "live   mean/max: %.0f / %.0f KB\n", res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
	fmt.Fprintf(w, "collections:    %d\n", res.Collections)
	if res.Collections > 0 {
		fmt.Fprintf(w, "pauses p50/p90: %.0f / %.0f ms\n", res.MedianPauseSeconds()*1000, res.P90PauseSeconds()*1000)
		fmt.Fprintf(w, "traced total:   %.0f KB (overhead %.1f%%)\n", float64(res.TracedTotalBytes)/1024, res.OverheadPct)
	}
	if res.PageAccesses > 0 {
		fmt.Fprintf(w, "page faults:    %d of %d accesses (%.2f%%)\n",
			res.PageFaults, res.PageAccesses, 100*float64(res.PageFaults)/float64(res.PageAccesses))
	}
}
