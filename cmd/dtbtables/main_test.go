package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

// tables runs the CLI's run() and returns its streams and exit code.
// -scale keeps the workloads tiny so a full evaluation fits in a test.
func tables(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errs bytes.Buffer
	err := run(args, &out, &errs)
	return out.String(), errs.String(), cliio.ExitCode(err)
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "7"},
		{"-table", "1"},
		{"-no-such-flag"},
		{"-inject", "bogus@1"},
		// Pairs that used to slip through silently: -apps ignored the
		// calibrated-profile knobs, -check won over -compare.
		{"-apps", "-scale", "0.5"},
		{"-apps", "-trigger", "65536"},
		{"-apps", "-memmax", "1048576"},
		{"-apps", "-tracemax", "16384"},
		{"-compare", "-check"},
		{"-check", "-table", "2"},
		{"-compare", "-table", "5"},
		{"-compare", "-table", "6"},
	} {
		if _, _, code := tables(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestTinyEvaluationPrintsTables(t *testing.T) {
	stdout, _, code := tables(t, "-scale", "0.002")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Table 2", "Table 3", "Table 4"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q", want)
		}
	}
	one, _, code := tables(t, "-scale", "0.002", "-table", "2")
	if code != 0 {
		t.Fatalf("-table 2 exit %d", code)
	}
	if !strings.Contains(one, "Table 2") || strings.Contains(one, "Table 3") {
		t.Fatalf("-table 2 printed the wrong tables:\n%s", one)
	}
}

// TestOutputFaultsExitNonzero: a table render that cannot reach the
// terminal intact — a write failure mid-stream or one surfacing only at
// the final flush — must not exit 0 looking complete.
func TestOutputFaultsExitNonzero(t *testing.T) {
	for _, inject := range []string{"close-err", "write-err@40", "short-write@5"} {
		var out, errs bytes.Buffer
		err := run([]string{"-scale", "0.002", "-table", "2", "-inject", inject}, &out, &errs)
		if code := cliio.ExitCode(err); code != 1 {
			t.Errorf("%s: exit %d (err %v), want 1", inject, code, err)
		}
		if inject == "close-err" && !errors.Is(err, fault.ErrInjected) {
			t.Errorf("close failure surfaced as %v, want the injected error", err)
		}
	}
}

func TestCompareRunsClean(t *testing.T) {
	stdout, _, code := tables(t, "-scale", "0.002", "-compare", "-table", "2")
	if code != 0 {
		t.Fatalf("-compare exit %d", code)
	}
	if !strings.Contains(stdout, "paper") && !strings.Contains(stdout, "Table") {
		t.Fatalf("comparison output unrecognised:\n%s", stdout)
	}
}
