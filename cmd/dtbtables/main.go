// Command dtbtables regenerates the paper's evaluation tables (2, 3,
// 4 and 6) by running all six collectors plus the NoGC and Live
// baselines over the six calibrated workloads.
//
// Usage:
//
//	dtbtables [-table N] [-scale F] [-trigger BYTES] [-memmax BYTES] [-tracemax BYTES]
//
// With no -table flag all four tables print. -scale shrinks the
// workloads proportionally for quick runs (the paper-size runs take
// around a minute). Workloads are evaluated concurrently on a bounded
// pool (-workers, default GOMAXPROCS); Ctrl-C cancels the evaluation
// at the next event boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	table := flag.Int("table", 0, "table to print (2, 3, 4, 5 or 6); 0 = all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
	trigger := flag.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	memMax := flag.Uint64("memmax", 3000*1024, "DTBMEM memory constraint in bytes")
	traceMax := flag.Uint64("tracemax", 50*1024, "FEEDMED/DTBFM trace budget in bytes")
	workers := flag.Int("workers", 0, "workloads evaluated concurrently (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false, "print measured values beside the paper's published numbers")
	check := flag.Bool("check", false, "verify the paper's qualitative claims (DESIGN.md §6); non-zero exit on failure")
	apps := flag.Bool("apps", false, "evaluate over the real mini-application traces instead of the calibrated profiles")
	progress := flag.Bool("progress", false, "stream per-run progress and summaries to stderr while the evaluation runs")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var probe dtbgc.Probe
	if *progress {
		probe = dtbgc.NewProgressReporter(os.Stderr)
	}
	var (
		ev  *dtbgc.Evaluation
		err error
	)
	if *apps {
		ev, err = dtbgc.RunAppEvaluationContext(ctx, dtbgc.AppEvalOptions{Probe: probe, Workers: *workers})
	} else {
		ev, err = dtbgc.RunPaperEvaluationContext(ctx, dtbgc.EvalOptions{
			Scale:         *scale,
			TriggerBytes:  *trigger,
			MemMaxBytes:   *memMax,
			TraceMaxBytes: *traceMax,
			Probe:         probe,
			Workers:       *workers,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtbtables:", err)
		os.Exit(1)
	}
	if *check {
		errs := ev.ShapeCheck()
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "claim violated:", e)
		}
		if len(errs) > 0 {
			os.Exit(1)
		}
		fmt.Println("all reproduction claims hold")
		return
	}
	if *compare {
		for _, n := range []int{2, 3, 4} {
			if *table != 0 && *table != n {
				continue
			}
			tab, err := ev.CompareTable(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtbtables:", err)
				os.Exit(1)
			}
			fmt.Println(tab)
		}
		return
	}
	switch *table {
	case 0:
		fmt.Println(ev.Table2())
		fmt.Println(ev.Table3())
		fmt.Println(ev.Table4())
		fmt.Println(ev.Table5())
		fmt.Println(ev.Table6())
	case 2:
		fmt.Println(ev.Table2())
	case 3:
		fmt.Println(ev.Table3())
	case 4:
		fmt.Println(ev.Table4())
	case 5:
		fmt.Println(ev.Table5())
	case 6:
		fmt.Println(ev.Table6())
	default:
		fmt.Fprintf(os.Stderr, "dtbtables: no table %d (have 2, 3, 4, 5, 6)\n", *table)
		os.Exit(2)
	}
}
