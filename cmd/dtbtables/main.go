// Command dtbtables regenerates the paper's evaluation tables (2, 3,
// 4 and 6) by running all six collectors plus the NoGC and Live
// baselines over the six calibrated workloads.
//
// Usage:
//
//	dtbtables [-table N] [-scale F] [-trigger BYTES] [-memmax BYTES] [-tracemax BYTES]
//
// With no -table flag all four tables print. -scale shrinks the
// workloads proportionally for quick runs (the paper-size runs take
// around a minute). Workloads are evaluated concurrently on a bounded
// pool (-workers, default GOMAXPROCS); Ctrl-C cancels the evaluation
// at the next event boundary.
//
// Table output is buffered and checked through to the final flush, so
// a write failure (full disk behind a redirect, closed pipe) fails
// the command with a non-zero exit instead of printing a truncated
// table that looks complete. -inject SPEC schedules deterministic
// output faults (see internal/fault) for testing exactly that. Exit
// status: 0 success, 1 operational failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/cliio"
	"github.com/dtbgc/dtbgc/internal/fault"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dtbtables:", err)
	}
	os.Exit(cliio.ExitCode(err))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dtbtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "table to print (2, 3, 4, 5 or 6); 0 = all")
	scale := fs.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
	trigger := fs.Uint64("trigger", 1<<20, "scavenge trigger in bytes")
	memMax := fs.Uint64("memmax", 3000*1024, "DTBMEM memory constraint in bytes")
	traceMax := fs.Uint64("tracemax", 50*1024, "FEEDMED/DTBFM trace budget in bytes")
	workers := fs.Int("workers", 0, "workloads evaluated concurrently (0 = GOMAXPROCS)")
	compare := fs.Bool("compare", false, "print measured values beside the paper's published numbers")
	check := fs.Bool("check", false, "verify the paper's qualitative claims (DESIGN.md §6); non-zero exit on failure")
	apps := fs.Bool("apps", false, "evaluate over the real mini-application traces instead of the calibrated profiles")
	progress := fs.Bool("progress", false, "stream per-run progress and summaries to stderr while the evaluation runs")
	inject := fs.String("inject", "", "schedule deterministic I/O faults on the output (see internal/fault)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cliio.UsageError{Err: err}
	}
	var plan *fault.Plan
	if *inject != "" {
		p, err := fault.ParseSpec(*inject)
		if err != nil {
			return &cliio.UsageError{Err: err}
		}
		plan = p
	}
	switch *table {
	case 0, 2, 3, 4, 5, 6:
	default:
		return cliio.Usagef("no table %d (have 2, 3, 4, 5, 6)", *table)
	}
	// These pairs used to slip through: -apps runs the fixed-size
	// mini-application traces, so the calibrated-profile knobs were
	// silently ignored, and -check silently won over -compare.
	if err := cliio.Conflicts(fs,
		cliio.Conflict{A: "apps", B: "scale", Reason: "the mini-application traces are fixed-size; -scale shapes only the calibrated profiles"},
		cliio.Conflict{A: "apps", B: "trigger", Reason: "the mini-application evaluation uses its own calibrated trigger"},
		cliio.Conflict{A: "apps", B: "memmax", Reason: "the mini-application evaluation uses its own calibrated DTBMEM budget"},
		cliio.Conflict{A: "apps", B: "tracemax", Reason: "the mini-application evaluation uses its own calibrated trace budget"},
		cliio.Conflict{A: "compare", B: "check", Reason: "print a comparison or verify the claims, not both"},
		cliio.Conflict{A: "check", B: "table", Reason: "-check verifies every claim; it does not print tables"},
	); err != nil {
		return err
	}
	if *compare && (*table == 5 || *table == 6) {
		return cliio.Usagef("-compare covers tables 2, 3 and 4: the paper publishes no numbers for table %d", *table)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var probe dtbgc.Probe
	if *progress {
		probe = dtbgc.NewProgressReporter(stderr)
	}
	var (
		ev  *dtbgc.Evaluation
		err error
	)
	if *apps {
		ev, err = dtbgc.RunAppEvaluationContext(ctx, dtbgc.AppEvalOptions{Probe: probe, Workers: *workers})
	} else {
		ev, err = dtbgc.RunPaperEvaluationContext(ctx, dtbgc.EvalOptions{
			Scale:         *scale,
			TriggerBytes:  *trigger,
			MemMaxBytes:   *memMax,
			TraceMaxBytes: *traceMax,
			Probe:         probe,
			Workers:       *workers,
		})
	}
	if err != nil {
		return err
	}
	if *check {
		errs := ev.ShapeCheck()
		for _, e := range errs {
			fmt.Fprintln(stderr, "claim violated:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d reproduction claim(s) violated", len(errs))
		}
		return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
			fmt.Fprintln(w, "all reproduction claims hold")
			return nil
		})
	}
	if *compare {
		return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
			for _, n := range []int{2, 3, 4} {
				if *table != 0 && *table != n {
					continue
				}
				tab, err := ev.CompareTable(n)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, tab)
			}
			return nil
		})
	}
	return cliio.WriteTo("", stdout, plan, func(w io.Writer) error {
		for _, t := range []struct {
			n      int
			render func() *dtbgc.Table
		}{
			{2, ev.Table2}, {3, ev.Table3}, {4, ev.Table4}, {5, ev.Table5}, {6, ev.Table6},
		} {
			if *table == 0 || *table == t.n {
				fmt.Fprintln(w, t.render())
			}
		}
		return nil
	})
}
