package dtbgc

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
	"github.com/dtbgc/dtbgc/internal/apps/circuit"
	"github.com/dtbgc/dtbgc/internal/apps/logicmin"
	"github.com/dtbgc/dtbgc/internal/apps/psint"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// AppEvalOptions sizes the application-driven evaluation.
type AppEvalOptions struct {
	// GhostPages is the page count for the PostScript runs (default 40).
	GhostPages int
	// EspressoProblems is the PLA batch size (default 10).
	EspressoProblems int
	// SisVectors is the verification vector count (default 1024).
	SisVectors int
	// CfracN is the number to factor (default an 18-digit semiprime).
	CfracN string
	// TriggerBytes is the scavenge interval (default 64 KB — the app
	// traces are megabytes, not the paper's tens of megabytes).
	TriggerBytes uint64
	// MemMaxBytes is DTBMEM's budget (default 256 KB).
	MemMaxBytes uint64
	// TraceMaxBytes is the FEEDMED/DTBFM budget (default 16 KB).
	TraceMaxBytes uint64
	// Probe, when non-nil, receives telemetry from every simulated
	// run, labelled "app/collector" (the app runs themselves are not
	// instrumented — they record traces; the replays emit telemetry).
	Probe Probe
}

func (o AppEvalOptions) withDefaults() AppEvalOptions {
	if o.GhostPages == 0 {
		o.GhostPages = 40
	}
	if o.EspressoProblems == 0 {
		o.EspressoProblems = 10
	}
	if o.SisVectors == 0 {
		o.SisVectors = 1024
	}
	if o.CfracN == "" {
		o.CfracN = "998244359987710471"
	}
	if o.TriggerBytes == 0 {
		o.TriggerBytes = 64 * 1024
	}
	if o.MemMaxBytes == 0 {
		o.MemMaxBytes = 256 * 1024
	}
	if o.TraceMaxBytes == 0 {
		o.TraceMaxBytes = 16 * 1024
	}
	return o
}

// RunAppEvaluation is the evaluation matrix computed over the real
// mini-applications instead of the calibrated synthetic profiles:
// each program runs on the managed heap (the QPT-instrumentation
// stand-in), its recorded malloc/free trace drives all six collectors
// plus the baselines, and the same Table accessors apply. It is the
// end-to-end variant of RunPaperEvaluation, trading calibration
// fidelity for organic program behaviour.
func RunAppEvaluation(opts AppEvalOptions) (*Evaluation, error) {
	opts = opts.withDefaults()

	type app struct {
		name, desc string
		run        func() ([]Event, error)
	}
	apps := []app{
		{"ghost(1)", "PostScript-subset interpreter, synthetic manual (text-heavy)", func() ([]Event, error) {
			res, err := psint.RunDocument(psint.GenerateDocument(opts.GhostPages, 1))
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"ghost(2)", "PostScript-subset interpreter, synthetic thesis (figure-heavy)", func() ([]Event, error) {
			res, err := psint.RunDocument(psint.GenerateDrawing(opts.GhostPages, 2))
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"espresso", "cube-cover logic minimizer, random PLA batch", func() ([]Event, error) {
			plas := make([]string, opts.EspressoProblems)
			for i := range plas {
				plas[i] = logicmin.GeneratePLA(9, 18, 3, uint64(i+1))
			}
			res, err := logicmin.RunBatch(plas, 300)
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"sis", "BLIF network sweep + random-vector verification", func() ([]Event, error) {
			res, err := circuit.Run(circuit.GenerateBLIF(24, 600, 16, 1), opts.SisVectors)
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"cfrac", "continued-fraction factorization", func() ([]Event, error) {
			_, _, events, err := cfrac.Factor(opts.CfracN, cfrac.Config{})
			return events, err
		}},
	}

	ev := &Evaluation{Options: EvalOptions{
		Scale:         1,
		TriggerBytes:  opts.TriggerBytes,
		MemMaxBytes:   opts.MemMaxBytes,
		TraceMaxBytes: opts.TraceMaxBytes,
	}}
	for _, a := range apps {
		events, err := a.run()
		if err != nil {
			return nil, fmt.Errorf("dtbgc: app %s: %w", a.name, err)
		}
		rs := RunSet{
			Workload: workload.Profile{Name: a.name, Description: a.desc},
			Results:  make(map[string]*Result, 8),
		}
		policies := []Policy{
			FullPolicy(), FixedPolicy(1), FixedPolicy(4),
			MemoryPolicy(opts.MemMaxBytes),
			FeedMedPolicy(opts.TraceMaxBytes),
			DtbFMPolicy(opts.TraceMaxBytes),
		}
		for _, p := range policies {
			res, err := Simulate(events, SimOptions{
				Policy:       p,
				TriggerBytes: opts.TriggerBytes,
				Probe:        opts.Probe,
				Label:        a.name + "/" + p.Name(),
			})
			if err != nil {
				return nil, fmt.Errorf("dtbgc: app %s under %s: %w", a.name, p.Name(), err)
			}
			rs.Results[res.Collector] = res
		}
		for _, base := range []SimOptions{
			{NoGC: true, Probe: opts.Probe, Label: a.name + "/NoGC"},
			{LiveOracle: true, Probe: opts.Probe, Label: a.name + "/Live"},
		} {
			res, err := Simulate(events, base)
			if err != nil {
				return nil, fmt.Errorf("dtbgc: app %s baseline: %w", a.name, err)
			}
			rs.Results[res.Collector] = res
		}
		ev.Runs = append(ev.Runs, rs)
	}
	return ev, nil
}
