package dtbgc

import (
	"context"
	"fmt"

	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
	"github.com/dtbgc/dtbgc/internal/apps/circuit"
	"github.com/dtbgc/dtbgc/internal/apps/logicmin"
	"github.com/dtbgc/dtbgc/internal/apps/psint"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// AppEvalOptions sizes the application-driven evaluation.
type AppEvalOptions struct {
	// GhostPages is the page count for the PostScript runs (default 40).
	GhostPages int
	// EspressoProblems is the PLA batch size (default 10).
	EspressoProblems int
	// SisVectors is the verification vector count (default 1024).
	SisVectors int
	// CfracN is the number to factor (default an 18-digit semiprime).
	CfracN string
	// TriggerBytes is the scavenge interval (default 64 KB — the app
	// traces are megabytes, not the paper's tens of megabytes).
	TriggerBytes uint64
	// MemMaxBytes is DTBMEM's budget (default 256 KB).
	MemMaxBytes uint64
	// TraceMaxBytes is the FEEDMED/DTBFM budget (default 16 KB).
	TraceMaxBytes uint64
	// Probe, when non-nil, receives telemetry from every simulated
	// run, labelled "app/collector" (the app runs themselves are not
	// instrumented — they record traces; the replays emit telemetry).
	// Apps run concurrently, so the Probe must be safe for concurrent
	// use; the stock sinks are.
	Probe Probe
	// Workers bounds how many apps run-and-replay concurrently; zero
	// means GOMAXPROCS.
	Workers int
}

func (o AppEvalOptions) withDefaults() AppEvalOptions {
	if o.GhostPages == 0 {
		o.GhostPages = 40
	}
	if o.EspressoProblems == 0 {
		o.EspressoProblems = 10
	}
	if o.SisVectors == 0 {
		o.SisVectors = 1024
	}
	if o.CfracN == "" {
		o.CfracN = "998244359987710471"
	}
	if o.TriggerBytes == 0 {
		o.TriggerBytes = 64 * 1024
	}
	if o.MemMaxBytes == 0 {
		o.MemMaxBytes = 256 * 1024
	}
	if o.TraceMaxBytes == 0 {
		o.TraceMaxBytes = 16 * 1024
	}
	return o
}

// RunAppEvaluation is the evaluation matrix computed over the real
// mini-applications instead of the calibrated synthetic profiles:
// each program runs on the managed heap (the QPT-instrumentation
// stand-in), its recorded malloc/free trace drives all six collectors
// plus the baselines in one fan-out pass, and the same Table
// accessors apply. It is the end-to-end variant of
// RunPaperEvaluation, trading calibration fidelity for organic
// program behaviour, and RunAppEvaluationContext without
// cancellation.
func RunAppEvaluation(opts AppEvalOptions) (*Evaluation, error) {
	return RunAppEvaluationContext(context.Background(), opts)
}

// RunAppEvaluationContext is RunAppEvaluation under a context: apps
// are scheduled on a bounded pool, a hard failure cancels the
// remaining work, and cancelling ctx aborts in-flight replays at
// their next event boundary. The apps themselves are not
// interruptible — cancellation lands between an app's run and its
// replay, or inside the replay.
func RunAppEvaluationContext(ctx context.Context, opts AppEvalOptions) (*Evaluation, error) {
	opts = opts.withDefaults()

	type app struct {
		name, desc string
		run        func() ([]Event, error)
	}
	apps := []app{
		{"ghost(1)", "PostScript-subset interpreter, synthetic manual (text-heavy)", func() ([]Event, error) {
			res, err := psint.RunDocument(psint.GenerateDocument(opts.GhostPages, 1))
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"ghost(2)", "PostScript-subset interpreter, synthetic thesis (figure-heavy)", func() ([]Event, error) {
			res, err := psint.RunDocument(psint.GenerateDrawing(opts.GhostPages, 2))
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"espresso", "cube-cover logic minimizer, random PLA batch", func() ([]Event, error) {
			plas := make([]string, opts.EspressoProblems)
			for i := range plas {
				plas[i] = logicmin.GeneratePLA(9, 18, 3, uint64(i+1))
			}
			res, err := logicmin.RunBatch(plas, 300)
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"sis", "BLIF network sweep + random-vector verification", func() ([]Event, error) {
			res, err := circuit.Run(circuit.GenerateBLIF(24, 600, 16, 1), opts.SisVectors)
			if err != nil {
				return nil, err
			}
			return res.Events, nil
		}},
		{"cfrac", "continued-fraction factorization", func() ([]Event, error) {
			_, _, events, err := cfrac.Factor(opts.CfracN, cfrac.Config{})
			return events, err
		}},
	}

	ev := &Evaluation{
		Options: EvalOptions{
			Scale:         1,
			TriggerBytes:  opts.TriggerBytes,
			MemMaxBytes:   opts.MemMaxBytes,
			TraceMaxBytes: opts.TraceMaxBytes,
		},
		Runs: make([]RunSet, len(apps)),
	}
	jobs := make([]engine.Job, len(apps))
	for i, a := range apps {
		jobs[i] = func(ctx context.Context) error {
			// The app run records the whole trace before any replay and
			// cannot be interrupted mid-program; skip it when the
			// evaluation is already cancelled.
			if err := ctx.Err(); err != nil {
				return err
			}
			events, err := a.run()
			if err != nil {
				return fmt.Errorf("dtbgc: app %s: %w", a.name, err)
			}
			sims := collectorMatrix(a.name, opts.TriggerBytes, opts.MemMaxBytes,
				opts.TraceMaxBytes, false, 0, opts.Probe)
			results, err := replayMatrix(ctx, SliceSource(events), sims)
			if err != nil {
				return fmt.Errorf("dtbgc: app %s: %w", a.name, err)
			}
			ev.Runs[i] = RunSet{
				Workload: workload.Profile{Name: a.name, Description: a.desc},
				Results:  results,
			}
			return nil
		}
	}
	if err := engine.RunJobs(ctx, opts.Workers, jobs); err != nil {
		return nil, err
	}
	return ev, nil
}
