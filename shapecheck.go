package dtbgc

import (
	"fmt"
	"strings"
)

// CompareTable renders a measured table side by side with the paper's
// published values: each cell reads "measured (paper)". which selects
// the table: 2, 3 or 4.
func (ev *Evaluation) CompareTable(which int) (*Table, error) {
	var (
		measured *Table
		paper    map[string]map[string]PaperCell
		title    string
	)
	switch which {
	case 2:
		measured, paper = ev.Table2(), PaperTable2
		title = "Table 2 comparison: memory KB, measured (paper), mean/max"
	case 3:
		measured, paper = ev.Table3(), PaperTable3
		title = "Table 3 comparison: pauses ms, measured (paper), p50/p90"
	case 4:
		measured, paper = ev.Table4(), PaperTable4
		title = "Table 4 comparison: traced KB & overhead %, measured (paper)"
	default:
		return nil, fmt.Errorf("dtbgc: no comparison for table %d", which)
	}
	out := &Table{Title: title, Header: measured.Header}
	for _, row := range measured.Rows {
		collector := row[0]
		pubRow, ok := paper[collector]
		newRow := []string{collector}
		for i, cell := range row[1:] {
			name := measured.Header[i+1]
			if !ok {
				newRow = append(newRow, cell)
				continue
			}
			pub := pubRow[name]
			newRow = append(newRow, fmt.Sprintf("%s (%.0f/%.0f)", cell, pub.A, pub.B))
		}
		out.Rows = append(out.Rows, newRow)
	}
	return out, nil
}

// ShapeCheck verifies the reproduction claims of DESIGN.md §6 on an
// evaluation run with the paper's parameters: the qualitative results
// that must hold even though absolute values come from synthetic
// traces. It returns one error per violated claim (empty = all hold).
func (ev *Evaluation) ShapeCheck() []error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	budget := float64(ev.Options.MemMaxBytes)
	trigger := float64(ev.Options.TriggerBytes)

	for _, rs := range ev.Runs {
		name := rs.Workload.Name
		r := func(c string) *Result { return rs.Results[c] }

		// 1. Memory ordering.
		if !(r("Live").MemMeanBytes <= r("Full").MemMeanBytes+1 &&
			r("Full").MemMeanBytes <= r("NoGC").MemMeanBytes+1) {
			fail("%s: Live <= Full <= NoGC memory ordering violated", name)
		}
		if r("Fixed4").MemMeanBytes > r("Fixed1").MemMeanBytes*1.05 {
			fail("%s: Fixed4 memory above Fixed1", name)
		}
		// 5. Full extremes.
		for _, c := range CollectorOrder[1:] {
			if r(c).MemMaxBytes < r("Full").MemMaxBytes-1e-9 {
				fail("%s: %s max memory below Full's", name, c)
			}
			if r(c).TracedTotalBytes > r("Full").TracedTotalBytes {
				fail("%s: %s traced more than Full", name, c)
			}
		}
		if r("Fixed1").TracedTotalBytes > r("Fixed4").TracedTotalBytes {
			fail("%s: Fixed1 overhead above Fixed4", name)
		}

		// 2. DTBMEM constraint adherence / graceful degradation.
		feasible := r("Full").MemMaxBytes <= budget
		switch {
		case feasible && r("DtbMem").MemMaxBytes > budget+trigger:
			fail("%s: DtbMem blew a feasible budget (max %.0f KB vs %.0f KB + trigger)",
				name, r("DtbMem").MemMaxBytes/1024, budget/1024)
		case !feasible && r("DtbMem").MemMaxBytes > r("Full").MemMaxBytes*1.25:
			fail("%s: over-constrained DtbMem max %.0f KB not within 25%% of Full's %.0f KB",
				name, r("DtbMem").MemMaxBytes/1024, r("Full").MemMaxBytes/1024)
		}

		// 3-4. Pause-constrained collectors: DtbFM uses no more memory
		// than FeedMed because it reclaims what FeedMed strands. The
		// paper shows the effect decisively on the pass-structured
		// ESPRESSO runs; elsewhere the two may tie, so allow slack.
		slack := 1.10
		if strings.HasPrefix(name, "ESPRESSO") {
			slack = 1.02
		}
		if r("DtbFM").MemMeanBytes > r("FeedMed").MemMeanBytes*slack {
			fail("%s: DtbFM mean memory above FeedMed's", name)
		}
	}

	// 4. Median pause near the target where attainable (everything but
	// SIS at the paper's parameters).
	target := PaperMachine().PauseSeconds(ev.Options.TraceMaxBytes)
	for _, rs := range ev.Runs {
		if strings.HasPrefix(rs.Workload.Name, "SIS") {
			continue
		}
		med := rs.Results["DtbFM"].MedianPauseSeconds()
		if med > 2*target {
			fail("%s: DtbFM median pause %.0f ms far above the %.0f ms target",
				rs.Workload.Name, med*1000, target*1000)
		}
	}
	return errs
}
