package dtbgc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// recordingProbe captures every telemetry event in arrival order,
// rendered to a stable string per event, demuxed by label. It is safe
// for concurrent use, so it can sit behind both the fan-out engine and
// solo runs.
type recordingProbe struct {
	mu     sync.Mutex
	byRun  map[string][]string
	labels []string
}

func newRecordingProbe() *recordingProbe {
	return &recordingProbe{byRun: make(map[string][]string)}
}

func (p *recordingProbe) record(label string, ev any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byRun[label]; !ok {
		p.labels = append(p.labels, label)
	}
	p.byRun[label] = append(p.byRun[label], fmt.Sprintf("%T%+v", ev, ev))
}

func (p *recordingProbe) RunStart(e RunStart) { p.record(e.Label, e) }
func (p *recordingProbe) Decision(e Decision) { p.record(e.Label, e) }
func (p *recordingProbe) Scavenge(e ScavengeEvent) {
	p.record(e.Label, e)
}
func (p *recordingProbe) Progress(e Progress) { p.record(e.Label, e) }
func (p *recordingProbe) RunFinish(e RunFinish) {
	// The Result holds pointers (curve series) whose addresses differ
	// between any two runs; full Result equality is asserted separately
	// with DeepEqual, so the sequence records identity fields only.
	p.record(e.Label, fmt.Sprintf("RunFinish{Label:%s Collector:%s Collections:%d}",
		e.Label, e.Result.Collector, e.Result.Collections))
}

// equivalenceMatrix is every collector and baseline of the paper's
// evaluation, labelled for telemetry demuxing.
func equivalenceMatrix(name string, probe Probe) []SimOptions {
	const (
		trigger  = 64 * 1024
		memMax   = 192 * 1024
		traceMax = 12 * 1024
	)
	policies := []Policy{
		FullPolicy(), FixedPolicy(1), FixedPolicy(4),
		MemoryPolicy(memMax), FeedMedPolicy(traceMax), DtbFMPolicy(traceMax),
	}
	var sims []SimOptions
	for _, p := range policies {
		sims = append(sims, SimOptions{
			Policy:       p,
			TriggerBytes: trigger,
			RecordCurve:  true,
			Probe:        probe,
			Label:        name + "/" + p.Name(),
		})
	}
	sims = append(sims,
		SimOptions{NoGC: true, RecordCurve: true, Probe: probe, Label: name + "/NoGC"},
		SimOptions{LiveOracle: true, RecordCurve: true, Probe: probe, Label: name + "/Live"},
	)
	return sims
}

// TestReplayAllEquivalence is the engine's end-to-end contract at the
// facade: for every collector and baseline over every paper workload,
// the single-pass fan-out must produce Results — History, curves, and
// per-run telemetry sequence included — bit-identical to independent
// Simulate calls over the same trace.
func TestReplayAllEquivalence(t *testing.T) {
	for _, w := range Workloads() {
		scaled := w.Scale(0.005)
		events, err := scaled.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", w.Name, err)
		}

		fanProbe := newRecordingProbe()
		fanOpts := equivalenceMatrix(w.Name, fanProbe)
		fanned, err := ReplayAll(context.Background(), EventSource(scaled.GenerateTo), fanOpts)
		if err != nil {
			t.Fatalf("%s: ReplayAll: %v", w.Name, err)
		}

		soloProbe := newRecordingProbe()
		soloOpts := equivalenceMatrix(w.Name, soloProbe)
		for i, o := range soloOpts {
			solo, err := Simulate(events, o)
			if err != nil {
				t.Fatalf("%s/%s: Simulate: %v", w.Name, o.Label, err)
			}
			if !reflect.DeepEqual(fanned[i], solo) {
				t.Errorf("%s: fan-out result for %s differs from solo run", w.Name, solo.Collector)
			}
		}

		// Telemetry: each run's event sequence must be identical —
		// same events, same order, same payloads. (Interleaving across
		// runs may differ; per-label order may not.)
		if !reflect.DeepEqual(fanProbe.labels, soloProbe.labels) {
			t.Errorf("%s: fan-out saw runs %v, solo saw %v", w.Name, fanProbe.labels, soloProbe.labels)
		}
		for _, label := range soloProbe.labels {
			if !reflect.DeepEqual(fanProbe.byRun[label], soloProbe.byRun[label]) {
				t.Errorf("%s: telemetry sequence for %s differs between fan-out and solo run", w.Name, label)
			}
		}
	}
}

// TestReplayAllCancellation cancels mid-replay and expects a prompt
// context.Canceled, not a drained trace.
func TestReplayAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scaled := WorkloadByName("GHOST(1)").Scale(0.05)
	emitted := 0
	src := EventSource(func(emit func(Event) error) error {
		return scaled.GenerateTo(func(e Event) error {
			emitted++
			if emitted == 1000 {
				cancel()
			}
			return emit(e)
		})
	})
	results, err := ReplayAll(ctx, src, equivalenceMatrix("GHOST(1)", nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ReplayAll error = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Error("cancelled replay returned results")
	}
	// The replay checks the context every few thousand events; it must
	// not run anywhere near the full trace after cancellation.
	total := len(scaled.MustGenerate())
	if emitted >= total {
		t.Errorf("cancelled replay drained the whole %d-event trace", total)
	}
}

// TestEvalContextCancellation checks the full evaluation honours a
// cancelled context: prompt return, ctx's own error, no partial
// evaluation handed back.
func TestEvalContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev, err := RunPaperEvaluationContext(ctx, EvalOptions{Scale: 0.01})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunPaperEvaluationContext error = %v, want context.Canceled", err)
	}
	if ev != nil {
		t.Error("cancelled evaluation returned a partial Evaluation")
	}
}

// TestReplayAllBatchesEquivalence pins the facade's batch-native entry
// points to ReplayAll: slice batches and stream-decoded batches must
// both reproduce the per-event source's results exactly.
func TestReplayAllBatchesEquivalence(t *testing.T) {
	w := Workloads()[0].Scale(0.005)
	events, err := w.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var enc bytes.Buffer
	if err := WriteTrace(&enc, events); err != nil {
		t.Fatalf("encode: %v", err)
	}

	want, err := ReplayAll(context.Background(), SliceSource(events), equivalenceMatrix(w.Name, nil))
	if err != nil {
		t.Fatalf("ReplayAll: %v", err)
	}

	sources := map[string]BatchEventSource{
		"SliceBatchSource":  SliceBatchSource(events),
		"StreamBatchSource": StreamBatchSource(bytes.NewReader(enc.Bytes())),
	}
	for name, src := range sources {
		got, err := ReplayAllBatches(context.Background(), src, equivalenceMatrix(w.Name, nil))
		if err != nil {
			t.Fatalf("%s: ReplayAllBatches: %v", name, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s: result for %s differs from per-event ReplayAll", name, want[i].Collector)
			}
		}
	}
}
