package dtbgc

// Audit facade: the invariant auditor and differential oracle of
// internal/audit, re-exported so programs embedding the simulator can
// hold their own runs to the paper's identities. Attach an Auditor as
// a Probe to any run or evaluation (it is concurrency-safe and demuxes
// runs by label), or call AuditPaperWorkload to put a workload through
// the full differential harness — fast paths against naive references,
// bit for bit. cmd/dtbaudit is the command-line face of the same
// machinery.

import (
	"context"

	"github.com/dtbgc/dtbgc/internal/audit"
	"github.com/dtbgc/dtbgc/internal/sim"
)

// AuditViolation is one observed breach of a paper identity: which
// run, which scavenge, which rule (e.g. "mem-accounting",
// "boundary-future"), and the observed values.
type AuditViolation = audit.Violation

// Auditor is a Probe that checks every scavenge of the runs it
// observes against the paper's per-scavenge identities — boundary in
// [0, t_n] (and at or before t_{n-1} for the stock policies), monotone
// scavenge times, Mem_n = S_n + reclaimed, pauses at the machine's
// trace rate, and a final Result consistent with the event stream.
// It observes and reports; it never influences the run.
type Auditor = audit.Auditor

// NewAuditor returns an empty Auditor ready to attach as a Probe (or
// as EvalOptions.Probe, to audit a whole evaluation).
func NewAuditor() *Auditor { return audit.NewAuditor() }

// CombineProbes fans one run's events out to several probes in
// argument order — e.g. a TelemetryWriter and an Auditor on the same
// run. Nil entries are skipped; zero live probes combine to nil.
func CombineProbes(ps ...Probe) Probe { return sim.Probes(ps...) }

// AuditReport is the outcome of auditing one workload: invariant
// violations, differential/metamorphic mismatches, and what was run.
type AuditReport = audit.Report

// AuditOptions parameterizes AuditPaperWorkload; the zero value audits
// at paper scale with the paper's constraints.
type AuditOptions = audit.Options

// AuditPaperWorkload runs the full correctness harness over one
// workload: every collector replayed through the fast paths under the
// live Auditor, re-run against the naive reference implementations
// (O(n) boundary scans, solo runs, chunked stream decoding), and
// diffed field by field. The Report collects everything found; the
// error covers only harness failures, not findings.
func AuditPaperWorkload(ctx context.Context, w Workload, opts AuditOptions) (*AuditReport, error) {
	return audit.AuditWorkload(ctx, w, opts)
}
