package dtbgc

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// Policy selects the threatening boundary before each scavenge; it is
// the axis along which the paper's collectors differ (Table 1).
type Policy = core.Policy

// Event is one record of an allocation trace.
type Event = trace.Event

// Result carries the metrics of one simulated run.
type Result = sim.Result

// Machine is the simulated hardware model (CPU speed and trace rate).
type Machine = sim.Machine

// Workload is a synthetic program profile that generates allocation
// traces.
type Workload = workload.Profile

// PaperMachine returns the paper's machine model: 10 MIPS with the
// collector tracing 500 KB per second.
func PaperMachine() Machine { return sim.PaperMachine() }

// FullPolicy returns the non-generational collector: every scavenge
// traces all storage and reclaims all garbage (TB_n = 0).
func FullPolicy() Policy { return core.Full{} }

// FixedPolicy returns a classic generational collector that tenures
// objects after they survive k scavenges (TB_n = t_{n-k}). k = 1 and
// k = 4 are the paper's FIXED1 and FIXED4.
func FixedPolicy(k int) Policy { return core.Fixed{K: k} }

// FeedMedPolicy returns Ungar & Jackson's Feedback Mediation collector
// with the given per-scavenge trace budget in bytes.
func FeedMedPolicy(traceMaxBytes uint64) Policy { return core.FeedMed{TraceMax: traceMaxBytes} }

// DtbFMPolicy returns the paper's pause-time-constrained dynamic
// threatening boundary collector with the given per-scavenge trace
// budget in bytes.
func DtbFMPolicy(traceMaxBytes uint64) Policy { return core.DtbFM{TraceMax: traceMaxBytes} }

// PausePolicy returns the DTBFM collector tuned for a maximum pause
// time on the paper's machine: the pause converts to a trace budget at
// the machine's trace rate ("a user-specified maximum pause-time is
// easily converted to Trace_max", §4.1).
func PausePolicy(maxPause time.Duration) Policy {
	return PausePolicyOn(maxPause, PaperMachine())
}

// PausePolicyOn is PausePolicy for an explicit machine model.
func PausePolicyOn(maxPause time.Duration, m Machine) Policy {
	budget := uint64(maxPause.Seconds() * m.TraceBytesPer)
	return core.DtbFM{TraceMax: budget}
}

// MemoryPolicy returns the paper's memory-constrained dynamic
// threatening boundary collector (DTBMEM) with the given maximum
// memory use in bytes.
func MemoryPolicy(maxBytes uint64) Policy { return core.DtbMem{MemMax: maxBytes} }

// ParsePolicy builds a policy from a textual spec such as "full",
// "fixed4", "dtbfm:50k", "dtbmem:3000k", "bandit:eps=0.1" or
// "grad:rate=0.2" (see internal/core for the grammar); it is what the
// command-line tools use.
func ParsePolicy(spec string) (Policy, error) { return core.ParsePolicy(spec) }

// SimOptions parameterizes Simulate.
type SimOptions struct {
	// Policy drives collection. Leave nil with NoGC or LiveOracle set
	// for the baseline modes.
	Policy Policy
	// PolicySeed seeds adaptive policies (AdaptivePolicy): each run
	// derives its instance seed deterministically from this value, the
	// Label and the collector name, so identical options replay
	// identical learned state on every engine path. Zero is a valid
	// seed; pure policies ignore it.
	PolicySeed uint64
	// NoGC measures the program with the collector disabled.
	NoGC bool
	// LiveOracle measures the exact live-byte curve (storage reclaimed
	// at the instant of death).
	LiveOracle bool
	// Machine defaults to PaperMachine().
	Machine Machine
	// TriggerBytes is the scavenge interval; defaults to 1 MB.
	TriggerBytes uint64
	// RecordCurve retains the memory-over-time series (Figure 2).
	RecordCurve bool
	// CurvePoints caps the retained curve length (0 = keep all).
	CurvePoints int
	// PageFrames enables the virtual-memory model: an LRU resident
	// set of PageFrames pages (PageBytes each, default 4096) is driven
	// by mutator and collector touches, and the result reports page
	// faults — the locality axis on which generational collection was
	// originally evaluated.
	PageFrames int
	// PageBytes sets the page size when PageFrames > 0.
	PageBytes uint64
	// Opportunistic additionally scavenges at trace Mark events
	// (program quiescent points) once half the trigger interval has
	// accumulated — Wilson & Moher's answer to "when to collect",
	// composable with any boundary policy's answer to "what to
	// collect" (§4).
	Opportunistic bool
	// Probe, when non-nil, receives the run's telemetry: a typed
	// event at run start and finish, per scavenge (the policy decision
	// and the outcome), and periodically during allocation. Telemetry
	// observes, never influences — a run's result is identical with or
	// without a probe — and a nil Probe costs the simulator nothing.
	// See NewTelemetryWriter and NewProgressReporter for stock sinks.
	Probe Probe
	// ProgressBytes sets the allocation interval between Progress
	// telemetry events (default 4 MB; only meaningful with a Probe).
	ProgressBytes uint64
	// Label tags every telemetry event of this run so one Probe can
	// demux several runs (the evaluation harness labels runs
	// "workload/collector").
	Label string
	// UncompactedTape disables epoch-based compaction of dead tape
	// prefixes, pinning every object the trace ever allocated in
	// memory for the whole replay. Compaction is invisible — results
	// and telemetry are bit-identical either way, which the audit
	// oracle re-proves on every run — so this exists for audits and
	// debugging, not tuning. In a fan-out replay the tape is shared:
	// one option set with this disables compaction for all collectors
	// in that replay.
	UncompactedTape bool
}

func (o SimOptions) config() sim.Config {
	cfg := sim.Config{
		Policy:          o.Policy,
		PolicySeed:      o.PolicySeed,
		Machine:         o.Machine,
		TriggerBytes:    o.TriggerBytes,
		RecordCurve:     o.RecordCurve,
		CurvePoints:     o.CurvePoints,
		Opportunistic:   o.Opportunistic,
		PageFrames:      o.PageFrames,
		PageBytes:       o.PageBytes,
		Probe:           o.Probe,
		ProgressBytes:   o.ProgressBytes,
		Label:           o.Label,
		UncompactedTape: o.UncompactedTape,
	}
	switch {
	case o.NoGC:
		cfg.Mode = sim.ModeNoGC
	case o.LiveOracle:
		cfg.Mode = sim.ModeLive
	default:
		cfg.Mode = sim.ModePolicy
	}
	return cfg
}

// Simulate runs one collector (or baseline) over an allocation trace
// and returns its metrics.
func Simulate(events []Event, opts SimOptions) (*Result, error) {
	return sim.Run(events, opts.config())
}

// SimulateStream runs a collector over a binary trace streamed from r
// (as written by WriteTrace), decoding events one at a time so memory
// use is bounded by the simulated heap, not the trace length.
func SimulateStream(r io.Reader, opts SimOptions) (*Result, error) {
	return sim.RunReader(trace.NewReader(r), opts.config())
}

// EventSource streams one trace in event order to an emit callback,
// stopping at the first emit error (returned unchanged). It is how
// the replay engine consumes traces without materializing them:
// Workload.GenerateTo satisfies the signature directly, and
// SliceSource/StreamSource adapt the other trace forms.
type EventSource = engine.Source

// SliceSource adapts an in-memory trace to an EventSource.
func SliceSource(events []Event) EventSource { return engine.SliceSource(events) }

// StreamSource adapts a binary trace stream (as written by WriteTrace)
// to an EventSource; events decode one at a time, so replaying an
// arbitrarily long capture uses memory bounded by the simulated
// heaps.
func StreamSource(r io.Reader) EventSource { return engine.ReaderSource(trace.NewReader(r)) }

// DropStats is the recovery decoder's accounting of what a damaged
// trace lost: typed drop counts plus the exact bytes skipped. The zero
// value means the stream decoded completely.
type DropStats = trace.DropStats

// RecoveringSource adapts a possibly damaged binary trace stream to an
// EventSource using the recovery decoder: corrupt records are resynced
// past and a torn file tail is absorbed instead of failing the replay.
// Nothing is dropped silently — the second return value reports the
// exact accounting, final once the source has been consumed — and the
// caller is expected to surface it (TelemetryWriter.Drops,
// Auditor.NoteDrops). The strict StreamSource remains the default for
// data whose integrity matters.
func RecoveringSource(r io.Reader) (EventSource, func() DropStats) {
	rr := trace.NewRecoveringReader(r)
	return engine.EventReaderSource(rr), rr.Drops
}

// ReplayAll is the single-pass fan-out at the heart of the evaluation
// harness: the source's events are produced exactly once and fed to
// one independent runner per option set, whose results return in
// option order. Every result — History and telemetry sequence
// included — is bit-identical to a solo Simulate over the same trace;
// only the trace production and per-event bookkeeping work is shared.
// Events are delivered in batches internally; cancelling ctx aborts
// the replay at the next batch boundary (at most a few thousand
// events) with ctx's error.
func ReplayAll(ctx context.Context, src EventSource, opts []SimOptions) ([]*Result, error) {
	cfgs := make([]sim.Config, len(opts))
	for i, o := range opts {
		cfgs[i] = o.config()
	}
	return engine.Replay(ctx, src, cfgs)
}

// BatchEventSource streams one trace as event batches to an emit
// callback — the batch-native form of EventSource the replay engine
// actually runs on. Emitted slices are only valid during the emit
// call. ReplayAll wraps any EventSource into batches automatically;
// sources that can produce batches natively (SliceBatchSource,
// StreamBatchSource) skip that buffering.
type BatchEventSource = engine.BatchSource

// SliceBatchSource adapts an in-memory trace to a BatchEventSource,
// emitting zero-copy subslices.
func SliceBatchSource(events []Event) BatchEventSource { return engine.SliceBatchSource(events) }

// StreamBatchSource adapts a binary trace stream (as written by
// WriteTrace) to a BatchEventSource, decoding a whole batch per
// reader call into a reused buffer; memory stays bounded by the batch
// size and the simulated heaps.
func StreamBatchSource(r io.Reader) BatchEventSource {
	return engine.ReaderBatchSource(trace.NewReader(r))
}

// ReplayAllBatches is ReplayAll over a batch-native source.
func ReplayAllBatches(ctx context.Context, src BatchEventSource, opts []SimOptions) ([]*Result, error) {
	cfgs := make([]sim.Config, len(opts))
	for i, o := range opts {
		cfgs[i] = o.config()
	}
	return engine.ReplayBatches(ctx, src, cfgs)
}

// Checkpoint captures a consistent interrupted replay, resumable via
// its Resume method with a reopened source. See ReplayAllResumable.
type Checkpoint = engine.Checkpoint

// ReplayAllResumable is ReplayAll with checkpoint/resume: when the
// replay aborts between events — a source read error, a context
// cancellation — the returned Checkpoint can continue it from a
// reopened source replaying the same stream (the already-processed
// prefix is decoded and discarded, never re-fed). The resumed run's
// results and telemetry are bit-identical to an uninterrupted run.
// Errors that abort mid-event (a runner rejecting an event) return a
// nil checkpoint: there is nothing consistent to resume.
func ReplayAllResumable(ctx context.Context, src EventSource, opts []SimOptions) ([]*Result, *Checkpoint, error) {
	cfgs := make([]sim.Config, len(opts))
	for i, o := range opts {
		cfgs[i] = o.config()
	}
	return engine.ReplayResumable(ctx, src, cfgs)
}

// HistoryCSV renders a result's per-scavenge history — time,
// boundary, traced, reclaimed, surviving bytes and the pause — as CSV
// for plotting or inspection.
//
// History and Pauses are produced in lockstep by the simulator, one
// entry each per scavenge. If a hand-built Result violates that, the
// orphaned rows render an explicit NaN pause cell rather than a
// fabricated 0.0 — a zero pause is a plausible measurement, NaN is
// unmistakably "no data".
func HistoryCSV(res *Result) string {
	var b strings.Builder
	b.WriteString("n,tKB,tbKB,memBeforeKB,tracedKB,reclaimedKB,survivingKB,pauseMS\n")
	for i, s := range res.History.Scavenges {
		pause := math.NaN()
		if i < len(res.Pauses) {
			pause = res.Pauses[i] * 1000
		}
		fmt.Fprintf(&b, "%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			s.N, float64(s.T)/1024, float64(s.TB)/1024, float64(s.MemBefore)/1024,
			float64(s.Traced)/1024, float64(s.Reclaimed)/1024, float64(s.Surviving)/1024, pause)
	}
	return b.String()
}

// Workloads returns the six calibrated profiles of the paper's
// evaluation, in table order: GHOST(1), GHOST(2), ESPRESSO(1),
// ESPRESSO(2), SIS, CFRAC.
func Workloads() []Workload { return workload.PaperProfiles() }

// WorkloadByName returns the named paper workload.
//
// Panic contract: it panics on an unknown name. It exists for
// compile-time-constant names ("GHOST(1)", "SIS", ...), where a
// misspelling is a programming error best caught loudly; anything
// user- or config-derived must go through LookupWorkload, which
// returns the error instead.
func WorkloadByName(name string) Workload {
	p, err := workload.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("dtbgc: WorkloadByName(%q): %v — for names not fixed at compile time use LookupWorkload", name, err))
	}
	return p
}

// LookupWorkload returns the named paper workload or an error listing
// the valid names.
func LookupWorkload(name string) (Workload, error) { return workload.ByName(name) }

// FitWorkload derives a Workload profile from a recorded trace — the
// inverse of Workload.Generate. Capture your program's allocation
// trace, fit it, and study collector behaviour on scaled or perturbed
// variants. The fit is a permanent ramp plus a two-exponential
// lifetime mixture; see internal/workload.Fit for its semantics.
func FitWorkload(events []Event, name string) (Workload, error) {
	return workload.Fit(events, name)
}

// LifetimeStats characterizes a trace's object demographics: sizes,
// permanent fraction, and the byte-weighted lifetime survival
// function on the allocation clock.
type LifetimeStats = trace.LifetimeStats

// MeasureLifetimes computes LifetimeStats for a trace.
func MeasureLifetimes(events []Event) (*LifetimeStats, error) {
	return trace.MeasureLifetimes(events)
}

// WriteTrace encodes events in the compact binary trace format.
func WriteTrace(w io.Writer, events []Event) error { return trace.WriteAll(w, events) }

// ReadTrace decodes a binary trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Event, error) { return trace.NewReader(r).ReadAll() }

// DigestTrace decodes a binary trace from r, returning its hex
// sha256 content digest and event count. The digest is computed over
// the canonical binary encoding, so it is route-independent: the same
// events digested in memory (or re-encoded from a decode) produce the
// same value. It is the content address the dtbd daemon serves traces
// under — `dtbd eval -trace` sends it first and uploads the bytes
// only on a miss.
func DigestTrace(r io.Reader) (digest string, events int, err error) {
	dr := trace.NewDigestingReader(r)
	all, err := trace.NewReader(dr).ReadAll()
	if err != nil {
		return "", 0, err
	}
	return dr.Sum().String(), len(all), nil
}

// WriteTraceText encodes events in the line-oriented text format.
func WriteTraceText(w io.Writer, events []Event) error { return trace.WriteText(w, events) }

// ReadTraceText decodes the line-oriented text trace format.
func ReadTraceText(r io.Reader) ([]Event, error) { return trace.ReadText(r) }

// ValidateTrace checks a trace for well-formedness (unique IDs, no
// double frees, monotone clock, pointer stores between live objects).
func ValidateTrace(events []Event) error { return trace.Validate(events) }

// WindowTrace extracts the self-contained sub-trace covering the
// instruction interval [from, to]: objects still live at the window's
// start are re-introduced with synthetic allocations (original
// relative ages preserved), so the result passes ValidateTrace and can
// drive Simulate directly. Use it to skip a capture's warm-up or to
// isolate one program phase.
func WindowTrace(events []Event, from, to uint64) ([]Event, error) {
	return trace.Window(events, from, to)
}

// ForwardStats summarizes a trace's pointer stores by direction —
// the §4.2 observable: the dynamic boundary collector remembers every
// forward-in-time pointer, a design that works because such pointers
// are a small fraction of all stores.
type ForwardStats = trace.ForwardStats

// MeasureForwardPointers computes ForwardStats for a trace (the
// mini-applications' traces include pointer-store events).
func MeasureForwardPointers(events []Event) (ForwardStats, error) {
	return trace.MeasureForward(events)
}
