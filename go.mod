module github.com/dtbgc/dtbgc

go 1.22
