package dtbgc

// Observability facade: the simulator's Probe interface, its typed
// event stream, and the two stock sinks, re-exported so programs can
// watch a run — or a whole evaluation — as it happens instead of
// waiting for the post-hoc Result. The paper's collectors are defined
// by reacting to per-scavenge measurements; a Probe is the tap on
// exactly those measurements.

import (
	"io"

	"github.com/dtbgc/dtbgc/internal/sim"
)

// Probe observes a simulation run: one RunStart, then per scavenge a
// Decision (the boundary the policy chose, and the candidate boundary
// ages it chose among) followed by a ScavengeEvent (bytes traced,
// reclaimed, surviving, the pause, the tenured-garbage estimate and
// the trigger reason), Progress heartbeats during allocation, and a
// final RunFinish carrying the Result.
//
// Telemetry observes, never influences: attaching a Probe cannot
// change a run's result, and a nil Probe adds no allocations to the
// simulator's hot path. Implementations attached to a concurrent
// evaluation (EvalOptions.Probe) must be safe for concurrent use;
// both stock sinks are.
type Probe = sim.Probe

// RunStart announces a run and its fixed configuration.
type RunStart = sim.RunStart

// Decision records one boundary-policy decision, emitted before the
// scavenge runs.
type Decision = sim.Decision

// ScavengeEvent records one completed scavenge; its fields match the
// run's final History and Pauses entries.
type ScavengeEvent = sim.ScavengeEvent

// Progress is the periodic allocation heartbeat (cadence set by
// SimOptions.ProgressBytes).
type Progress = sim.Progress

// RunFinish closes a run's event stream with its final Result.
type RunFinish = sim.RunFinish

// TriggerReason says why a scavenge ran: the byte trigger elapsed, or
// an opportunistic Mark-event scavenge fired.
type TriggerReason = sim.TriggerReason

const (
	// TriggerByteBudget marks a scavenge scheduled by the allocation
	// interval (SimOptions.TriggerBytes).
	TriggerByteBudget = sim.TriggerByteBudget
	// TriggerMark marks an opportunistic scavenge at a program
	// quiescent point (SimOptions.Opportunistic).
	TriggerMark = sim.TriggerMark
)

// TelemetryWriter is the machine-consumption sink: one JSON object
// per telemetry event, one event per line. See the README's
// Observability section for the line schema; cmd/dtbtelemetrycheck
// validates a captured stream against it.
type TelemetryWriter = sim.TelemetryWriter

// NewTelemetryWriter returns a JSON-lines telemetry sink writing to
// w. Check Err after the run: write errors are sticky and reported
// there rather than interrupting the simulation.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter { return sim.NewTelemetryWriter(w) }

// ProgressReporter is the human-consumption sink: a start line, a
// periodic progress heartbeat, and a one-line summary per finished
// run — what you want on stderr during a long RunPaperEvaluation.
type ProgressReporter = sim.ProgressReporter

// NewProgressReporter returns a progress/summary sink writing to w
// (typically os.Stderr).
func NewProgressReporter(w io.Writer) *ProgressReporter { return sim.NewProgressReporter(w) }
