// Package dtbgc is a library reproduction of Barrett & Zorn's
// "Garbage Collection using a Dynamic Threatening Boundary"
// (CU-CS-659-93 / PLDI 1995).
//
// The library provides:
//
//   - the threatening-boundary collector framework and the six policies
//     of the paper's Table 1 (Full, Fixed1, Fixed4, FeedMed, DtbFM,
//     DtbMem), constructed here via FullPolicy, FixedPolicy,
//     FeedMedPolicy, PausePolicy/DtbFMPolicy and MemoryPolicy;
//   - a trace-driven simulator (Simulate) with the paper's machine
//     model: 10 MIPS, 500 KB/s tracing, 1 MB scavenge trigger;
//   - a malloc/free/pointer-store trace substrate with binary and text
//     codecs (ReadTrace/WriteTrace);
//   - calibrated synthetic workloads reproducing the paper's six
//     evaluation runs (Workloads, WorkloadByName). WorkloadByName
//     panics on unknown names and is meant for compile-time constants;
//     code resolving dynamic input — CLI flags, config files — should
//     use LookupWorkload, which returns an error listing the valid
//     names instead;
//   - the full evaluation harness (RunPaperEvaluation) regenerating
//     Tables 2, 3, 4 and 6 and the Figure 2 memory curves;
//   - a single-pass replay engine (ReplayAll with an EventSource):
//     one trace — streamed from a workload generator, a binary trace
//     file, or a slice — is fed exactly once to any number of
//     collectors, with results bit-identical to solo Simulate calls;
//     the evaluation harnesses run on it under bounded parallelism
//     with context cancellation (RunPaperEvaluationContext);
//   - per-scavenge telemetry: a Probe set on SimOptions or EvalOptions
//     observes every run (policy decisions with candidate boundaries,
//     scavenge outcomes with tenured garbage, allocation progress)
//     without influencing it, with stock JSON-lines and human progress
//     sinks (NewTelemetryWriter, NewProgressReporter).
//
// # Quick start
//
//	events := dtbgc.WorkloadByName("GHOST(1)").MustGenerate()
//	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{
//		Policy: dtbgc.PausePolicy(100 * time.Millisecond),
//	})
//	fmt.Println(res.MedianPauseSeconds())
//
// A reachability-based copying collector over a byte-array heap, the
// mechanism the paper's §4.2 describes (single remembered set of all
// forward-in-time pointers, write barrier, untenuring), lives in
// internal/gc and is exercised by the Figure-1 example and tests; the
// four mini-applications standing in for the paper's GhostScript /
// Espresso / SIS / Cfrac workloads live under internal/apps and are
// runnable via cmd/dtbapps.
package dtbgc
