package dtbgc_test

// Runnable godoc examples for the public API. Outputs are fixed
// because every workload and policy is deterministic.

import (
	"fmt"
	"time"

	dtbgc "github.com/dtbgc/dtbgc"
)

// ExampleSimulate runs the paper's memory-constrained collector on the
// CFRAC workload.
func ExampleSimulate() {
	events := dtbgc.WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{
		Policy:       dtbgc.MemoryPolicy(64 * 1024),
		TriggerBytes: 32 * 1024,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("collector %s ran %d scavenges\n", res.Collector, res.Collections)
	fmt.Printf("memory stayed under budget: %v\n", res.MemMaxBytes <= 64*1024+32*1024)
	// Output:
	// collector DtbMem ran 9 scavenges
	// memory stayed under budget: true
}

// ExamplePausePolicy shows the paper's headline knob: a pause-time
// target converted to a per-scavenge trace budget.
func ExamplePausePolicy() {
	// At 500 KB/s, 100 ms is a 50 KB budget; the policy is DTBFM.
	p := dtbgc.PausePolicy(100 * time.Millisecond)
	fmt.Println(p.Name())
	// Output:
	// DtbFM
}

// ExampleParsePolicy builds collectors from their command-line specs.
func ExampleParsePolicy() {
	for _, spec := range []string{"full", "fixed4", "dtbfm:50k", "dtbmem:3000k"} {
		p, err := dtbgc.ParsePolicy(spec)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Println(p.Name())
	}
	// Output:
	// Full
	// Fixed4
	// DtbFM
	// DtbMem
}

// ExampleWorkloads lists the six calibrated evaluation runs.
func ExampleWorkloads() {
	for _, w := range dtbgc.Workloads() {
		fmt.Printf("%s: %d MB\n", w.Name, w.TotalBytes>>20)
	}
	// Output:
	// GHOST(1): 49 MB
	// GHOST(2): 88 MB
	// ESPRESSO(1): 15 MB
	// ESPRESSO(2): 104 MB
	// SIS: 15 MB
	// CFRAC: 3 MB
}
