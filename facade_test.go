package dtbgc

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSimulateStreamMatchesSimulate(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	opts := SimOptions{Policy: DtbFMPolicy(8 * 1024), TriggerBytes: 128 * 1024}
	direct, err := Simulate(events, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	streamed, err := SimulateStream(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if direct.MemMeanBytes != streamed.MemMeanBytes ||
		direct.Collections != streamed.Collections ||
		direct.TracedTotalBytes != streamed.TracedTotalBytes {
		t.Fatal("streamed simulation diverged")
	}
}

func TestSimulateStreamRejectsGarbage(t *testing.T) {
	if _, err := SimulateStream(strings.NewReader("not a trace"), SimOptions{NoGC: true}); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestHistoryCSV(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	res, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	csv := HistoryCSV(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "n,tKB,tbKB,memBeforeKB,tracedKB,reclaimedKB,survivingKB,pauseMS" {
		t.Fatalf("bad header %q", lines[0])
	}
	if len(lines)-1 != res.Collections {
		t.Fatalf("%d rows for %d collections", len(lines)-1, res.Collections)
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 7 {
			t.Fatalf("malformed row %q", line)
		}
	}
}

func TestHistoryCSVEmpty(t *testing.T) {
	res, err := Simulate(nil, SimOptions{NoGC: true})
	if err != nil {
		t.Fatal(err)
	}
	csv := HistoryCSV(res)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 1 {
		t.Fatal("empty history should render header only")
	}
}

func TestTenuredGarbageFacade(t *testing.T) {
	events := WorkloadByName("ESPRESSO(2)").Scale(0.05).MustGenerate()
	fixed1, err := Simulate(events, SimOptions{Policy: FixedPolicy(1), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if fixed1.TenuredGarbageMeanBytes() <= full.TenuredGarbageMeanBytes() {
		t.Fatalf("Fixed1 garbage %.0f should exceed Full %.0f",
			fixed1.TenuredGarbageMeanBytes(), full.TenuredGarbageMeanBytes())
	}
}

func TestFigure2AsciiFacade(t *testing.T) {
	ev := testEval(t)
	chart, err := ev.Figure2Ascii("GHOST(1)", "Full", 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "Full memory") || !strings.Contains(chart, "live bytes") {
		t.Fatalf("legend missing:\n%s", chart)
	}
	if len(strings.Split(chart, "\n")) < 12 {
		t.Fatal("chart too short")
	}
	if _, err := ev.Figure2Ascii("NOPE", "Full", 60, 12); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunPaperEvaluationPropagatesGenerateErrors(t *testing.T) {
	bad := Workload{Name: "broken"} // fails Validate
	_, err := RunPaperEvaluation(EvalOptions{
		Scale:    1,
		Profiles: []Workload{bad},
	})
	if err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestFitWorkloadFacade(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	w, err := FitWorkload(events, "refit")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "refit" || w.TotalBytes == 0 {
		t.Fatalf("fitted workload %+v", w)
	}
	ls, err := MeasureLifetimes(events)
	if err != nil {
		t.Fatal(err)
	}
	if ls.TotalObjects == 0 {
		t.Fatal("no lifetime data")
	}
}

// TestTablesRenderAbsentCollectors pins the n/a-cell behaviour: a
// hand-assembled (or partially failed) evaluation with missing
// results must render every table without panicking, showing "n/a"
// where there is no measurement.
func TestTablesRenderAbsentCollectors(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.02).MustGenerate()
	full, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluation{Runs: []RunSet{
		{
			Workload: WorkloadByName("CFRAC"),
			Results:  map[string]*Result{"Full": full}, // everything else absent
		},
		{
			Workload: WorkloadByName("SIS"),
			Results:  nil, // nothing at all, not even the map
		},
	}}
	for i, tab := range []fmt.Stringer{ev.Table2(), ev.Table3(), ev.Table4(), ev.Table6()} {
		s := tab.String()
		if !strings.Contains(s, "n/a") {
			t.Errorf("table %d renders no n/a cells for absent collectors:\n%s", i, s)
		}
	}
	// The one measured cell must still appear in Table 6's Full row.
	if s := ev.Table6().String(); !strings.Contains(s, "CFRAC") {
		t.Errorf("Table6 lost the measured workload row:\n%s", s)
	}
}
