package dtbgc

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestAdaptiveFacadeSimulate pins the adaptive surface of the facade:
// the constructors build AdaptivePolicy values, Simulate threads
// PolicySeed deterministically, and different seeds actually learn
// differently.
func TestAdaptiveFacadeSimulate(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	for _, p := range []Policy{EpsGreedyPolicy(0.2), UCBPolicy(1.5), GradientPolicy()} {
		if _, ok := p.(AdaptivePolicy); !ok {
			t.Fatalf("%s is not an AdaptivePolicy", p.Name())
		}
		opts := SimOptions{Policy: p, TriggerBytes: 128 * 1024, PolicySeed: 7, Label: "facade"}
		a, err := Simulate(events, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(events, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same options diverged across runs", p.Name())
		}
	}
	// The seed must matter for a policy that explores randomly; the
	// small trigger gives the bandit enough collections to diverge.
	run := func(seed uint64) *Result {
		res, err := Simulate(events, SimOptions{
			Policy: EpsGreedyPolicy(0.5), TriggerBytes: 16 * 1024, PolicySeed: seed, Label: "facade",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if reflect.DeepEqual(run(1).History, run(2).History) {
		t.Error("PolicySeed is not threaded: seeds 1 and 2 produced identical histories")
	}
}

func TestAdaptiveFacadeParse(t *testing.T) {
	for _, spec := range DefaultTournamentRoster() {
		if _, err := ParsePolicy(spec); err != nil {
			t.Errorf("roster spec %q rejected by facade ParsePolicy: %v", spec, err)
		}
	}
}

// TestRunTournamentFacade runs a miniature tournament end to end
// through the facade and renders its markdown.
func TestRunTournamentFacade(t *testing.T) {
	res, err := RunTournament(context.Background(), TournamentOptions{
		Policies:  []string{"full", "dtbfm:50k", "bandit:eps=0.2"},
		Workloads: []Workload{WorkloadByName("GHOST(1)")},
		Seeds:     []uint64{1, 2},
		Scale:     0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Standings) != 3 || len(res.Cells) != 2 {
		t.Fatalf("unexpected report shape: %d standings, %d cells", len(res.Standings), len(res.Cells))
	}
	var sb strings.Builder
	if err := WriteTournamentMarkdown(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "## Leaderboard") {
		t.Fatal("markdown report missing leaderboard")
	}
}
