package dtbgc

import (
	"context"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// facadeChurn is pure churn — every object dies after a short hold —
// so a long replay's dead tape prefix grows without bound and the
// default-cadence epoch compaction fires many times.
func facadeChurn(n int) []Event {
	b := trace.NewBuilder()
	var pending []trace.ObjectID
	for i := 0; i < n; i++ {
		b.Advance(100)
		pending = append(pending, b.Alloc(256))
		if len(pending) > 12 {
			b.Free(pending[0])
			pending = pending[1:]
		}
	}
	return b.Events()
}

// TestReplayAllCompactionInvisible: through the public facade, a long
// churn replay with the shared tape compacting at its default cadence
// must produce results identical to the same replay with
// SimOptions.UncompactedTape pinning the whole trace in memory.
func TestReplayAllCompactionInvisible(t *testing.T) {
	events := facadeChurn(30000)
	opts := []SimOptions{
		{Policy: FullPolicy(), TriggerBytes: 10 * 1024},
		{Policy: FeedMedPolicy(1 << 20), TriggerBytes: 10 * 1024},
		{NoGC: true},
	}

	compacted, err := ReplayAll(context.Background(), SliceSource(events), opts)
	if err != nil {
		t.Fatal(err)
	}

	pinned := make([]SimOptions, len(opts))
	for i, o := range opts {
		o.UncompactedTape = true
		pinned[i] = o
	}
	uncompacted, err := ReplayAll(context.Background(), SliceSource(events), pinned)
	if err != nil {
		t.Fatal(err)
	}

	for i := range compacted {
		if !reflect.DeepEqual(compacted[i], uncompacted[i]) {
			t.Errorf("%s: compacted replay diverged from uncompacted replay", compacted[i].Collector)
		}
	}
}
