package dtbgc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
)

// recordedRun retains every telemetry event of one run in order.
type recordedRun struct {
	events []any
}

func (p *recordedRun) RunStart(e RunStart)      { p.events = append(p.events, e) }
func (p *recordedRun) Decision(e Decision)      { p.events = append(p.events, e) }
func (p *recordedRun) Scavenge(e ScavengeEvent) { p.events = append(p.events, e) }
func (p *recordedRun) Progress(e Progress)      { p.events = append(p.events, e) }
func (p *recordedRun) RunFinish(e RunFinish)    { p.events = append(p.events, e) }

// TestSimulateStreamTelemetryParity: the in-memory and streaming
// entry points must emit identical telemetry (and results) for the
// same trace — a probe cannot tell which one drove the run.
func TestSimulateStreamTelemetryParity(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	mk := func(p Probe) SimOptions {
		return SimOptions{
			Policy:        DtbFMPolicy(8 * 1024),
			TriggerBytes:  128 * 1024,
			Probe:         p,
			Label:         "parity/DtbFM",
			ProgressBytes: 256 * 1024,
		}
	}
	var direct recordedRun
	directRes, err := Simulate(events, mk(&direct))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var streamed recordedRun
	streamedRes, err := SimulateStream(&buf, mk(&streamed))
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.events) == 0 {
		t.Fatal("no telemetry emitted")
	}
	if !reflect.DeepEqual(direct.events, streamed.events) {
		t.Errorf("telemetry diverged: %d direct events vs %d streamed", len(direct.events), len(streamed.events))
		for i := range direct.events {
			if i >= len(streamed.events) || !reflect.DeepEqual(direct.events[i], streamed.events[i]) {
				t.Fatalf("first divergence at event %d:\ndirect:   %+v\nstreamed: %+v", i, direct.events[i], streamed.events[i])
			}
		}
	}
	if !reflect.DeepEqual(directRes, streamedRes) {
		t.Error("results diverged between Simulate and SimulateStream")
	}
}

// TestTelemetryWriterStream checks the JSON-lines sink end to end: a
// run through the root-facade constructor produces one object per
// line with the documented discriminators in the documented order.
func TestTelemetryWriterStream(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	var buf bytes.Buffer
	tw := NewTelemetryWriter(&buf)
	res, err := Simulate(events, SimOptions{
		Policy:       FullPolicy(),
		TriggerBytes: 128 * 1024,
		Probe:        tw,
		Label:        "CFRAC/Full",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := res.Collections*2 + 2; len(lines) < want {
		t.Fatalf("got %d telemetry lines, want at least %d", len(lines), want)
	}
	if !strings.Contains(lines[0], `"event":"run_start"`) {
		t.Errorf("first line is not run_start: %s", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"event":"run_finish"`) {
		t.Errorf("last line is not run_finish: %s", last)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"label":"CFRAC/Full"`) {
			t.Fatalf("line missing the run label: %s", line)
		}
	}
}

// TestHistoryCSVPauseMismatch: orphaned history rows must render an
// explicit NaN pause, never a fabricated 0.0.
func TestHistoryCSVPauseMismatch(t *testing.T) {
	res := &Result{Pauses: []float64{0.25}}
	res.History.Record(core.Scavenge{T: 1024, TB: 0, MemBefore: 2048, Traced: 512, Reclaimed: 512, Surviving: 1536})
	res.History.Record(core.Scavenge{T: 2048, TB: 1024, MemBefore: 3072, Traced: 256, Reclaimed: 1024, Surviving: 2048})
	csv := HistoryCSV(res)
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), csv)
	}
	if !strings.HasSuffix(lines[1], ",250.0") {
		t.Errorf("row with a pause should render it: %s", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",NaN") {
		t.Errorf("orphaned row should render NaN, got: %s", lines[2])
	}
}

// TestEvalRejectsEmptyProfiles: a non-nil empty profile list is a
// caller bug, not a trivially-passing evaluation.
func TestEvalRejectsEmptyProfiles(t *testing.T) {
	_, err := RunPaperEvaluation(EvalOptions{Profiles: []Workload{}})
	if err == nil {
		t.Fatal("empty Profiles accepted")
	}
	if !strings.Contains(err.Error(), "Profiles is empty") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestEvalJoinsAllFailures: when several workloads fail, the error
// names each of them, not just the first.
func TestEvalJoinsAllFailures(t *testing.T) {
	bad := func(name string) Workload {
		w := WorkloadByName("CFRAC").Scale(0.01)
		w.Name = name
		w.TotalBytes = 0 // fails Validate inside Generate
		return w
	}
	_, err := RunPaperEvaluation(EvalOptions{Profiles: []Workload{bad("badA"), bad("badB")}})
	if err == nil {
		t.Fatal("invalid profiles accepted")
	}
	for _, name := range []string{"badA", "badB"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error does not mention %s: %v", name, err)
		}
	}
}

// TestEvalTelemetryLabels: the harness labels each run
// "workload/collector" so one sink can demux the concurrent runs.
func TestEvalTelemetryLabels(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTelemetryWriter(&buf)
	w := WorkloadByName("CFRAC").Scale(0.05)
	_, err := RunPaperEvaluation(EvalOptions{
		Profiles:     []Workload{w},
		TriggerBytes: 64 * 1024,
		Probe:        tw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, label := range []string{"CFRAC/Full", "CFRAC/Fixed1", "CFRAC/DtbFM", "CFRAC/NoGC", "CFRAC/Live"} {
		if !strings.Contains(out, `"label":"`+label+`"`) {
			t.Errorf("no telemetry labelled %q", label)
		}
	}
}
