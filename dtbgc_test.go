package dtbgc

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPolicyConstructors(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
	}{
		{FullPolicy(), "Full"},
		{FixedPolicy(1), "Fixed1"},
		{FixedPolicy(4), "Fixed4"},
		{FeedMedPolicy(50 * 1024), "FeedMed"},
		{DtbFMPolicy(50 * 1024), "DtbFM"},
		{MemoryPolicy(3000 * 1024), "DtbMem"},
		{PausePolicy(100 * time.Millisecond), "DtbFM"},
	}
	for _, c := range cases {
		if c.p.Name() != c.name {
			t.Errorf("policy name %q, want %q", c.p.Name(), c.name)
		}
	}
}

func TestPausePolicyConvertsToTraceBudget(t *testing.T) {
	// 100 ms at 500 KB/s = 50 KB (the paper's parameters).
	p := PausePolicy(100 * time.Millisecond)
	want := DtbFMPolicy(51200)
	if p != want {
		t.Fatalf("PausePolicy(100ms) = %#v, want %#v", p, want)
	}
}

func TestParsePolicyFacade(t *testing.T) {
	p, err := ParsePolicy("dtbmem:3000k")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "DtbMem" {
		t.Fatalf("parsed %q", p.Name())
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestWorkloadsFacade(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("Workloads() returned %d profiles", len(ws))
	}
	if WorkloadByName("CFRAC").Name != "CFRAC" {
		t.Fatal("WorkloadByName failed")
	}
	if _, err := LookupWorkload("nope"); err == nil {
		t.Fatal("LookupWorkload accepted unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WorkloadByName(nope) did not panic")
		}
	}()
	WorkloadByName("nope")
}

// TestWorkloadByNameTotal: WorkloadByName is total over the published
// catalogue — every name Workloads() lists must resolve through both
// entry points without panicking. WorkloadByName is for compile-time
// constants; LookupWorkload is the entry point for dynamic input.
func TestWorkloadByNameTotal(t *testing.T) {
	for _, w := range Workloads() {
		name := w.Name
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("WorkloadByName(%q) panicked: %v", name, r)
				}
			}()
			if got := WorkloadByName(name); got.Name != name {
				t.Errorf("WorkloadByName(%q).Name = %q", name, got.Name)
			}
		}()
		got, err := LookupWorkload(name)
		if err != nil || got.Name != name {
			t.Errorf("LookupWorkload(%q) = %q, %v", name, got.Name, err)
		}
	}
}

// TestLookupWorkloadErrorListsNames: a mistyped dynamic name must be
// self-diagnosing, not a panic — that is why CLI code goes through
// LookupWorkload rather than WorkloadByName.
func TestLookupWorkloadErrorListsNames(t *testing.T) {
	_, err := LookupWorkload("nope")
	if err == nil {
		t.Fatal("LookupWorkload accepted unknown name")
	}
	if !strings.Contains(err.Error(), "CFRAC") {
		t.Fatalf("error should list valid names, got: %v", err)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.2).MustGenerate()
	res, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: 128 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collections == 0 {
		t.Fatal("no collections")
	}
	if res.Collector != "Full" {
		t.Fatalf("collector %q", res.Collector)
	}
}

func TestSimulateBaselines(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.1).MustGenerate()
	nogc, err := Simulate(events, SimOptions{NoGC: true})
	if err != nil {
		t.Fatal(err)
	}
	live, err := Simulate(events, SimOptions{LiveOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if nogc.Collector != "NoGC" || live.Collector != "Live" {
		t.Fatalf("baseline names %q, %q", nogc.Collector, live.Collector)
	}
	if nogc.MemMaxBytes <= live.MemMaxBytes {
		t.Fatal("NoGC should use far more memory than Live on CFRAC")
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.02).MustGenerate()
	var bin, txt bytes.Buffer
	if err := WriteTrace(&bin, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("binary round trip lost events: %d != %d", len(got), len(events))
	}
	if err := WriteTraceText(&txt, events[:50]); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadTraceText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 50 {
		t.Fatalf("text round trip lost events: %d", len(got2))
	}
	if err := ValidateTrace(events); err != nil {
		t.Fatal(err)
	}
}

func TestDigestTraceFacade(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.02).MustGenerate()
	var bin bytes.Buffer
	if err := WriteTrace(&bin, events); err != nil {
		t.Fatal(err)
	}
	encoded := bin.Bytes()
	d1, n1, err := DigestTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(events) {
		t.Fatalf("event count %d, want %d", n1, len(events))
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not 64 hex chars", d1)
	}
	// Route independence: digesting the same content again, or after a
	// decode/re-encode round trip, yields the same address.
	d2, _, err := DigestTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest unstable: %s != %s", d1, d2)
	}
	other := WorkloadByName("CFRAC").Scale(0.01).MustGenerate()
	var bin2 bytes.Buffer
	if err := WriteTrace(&bin2, other); err != nil {
		t.Fatal(err)
	}
	d3, _, err := DigestTrace(&bin2)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different traces share a digest")
	}
	if _, _, err := DigestTrace(bytes.NewReader(encoded[:len(encoded)-3])); err == nil {
		t.Fatal("DigestTrace accepted a trace with a torn final record")
	}
}

// testEval runs a small-scale evaluation shared across table tests.
var testEvalCache *Evaluation

func testEval(t *testing.T) *Evaluation {
	t.Helper()
	if testEvalCache != nil {
		return testEvalCache
	}
	ev, err := RunPaperEvaluation(EvalOptions{
		Scale:        0.10,
		TriggerBytes: 100 * 1024, // keep ~the paper's collection count
		MemMaxBytes:  300 * 1024, // scale the memory budget too
		// Object lifetimes do not scale with run length, so the
		// smallest attainable trace volume per 100 KB interval is the
		// same as at full size (~15 KB of young survivors on GHOST);
		// 20 KB keeps the pause budget meaningful at this scale.
		TraceMaxBytes: 20 * 1024,
		RecordCurves:  true,
		CurvePoints:   400,
	})
	if err != nil {
		t.Fatal(err)
	}
	testEvalCache = ev
	return ev
}

func TestEvaluationShape(t *testing.T) {
	ev := testEval(t)
	if len(ev.Runs) != 6 {
		t.Fatalf("runs = %d", len(ev.Runs))
	}
	for _, rs := range ev.Runs {
		if len(rs.Results) != 8 {
			t.Fatalf("%s: %d results, want 8", rs.Workload.Name, len(rs.Results))
		}
		for _, name := range append(append([]string{}, CollectorOrder...), "NoGC", "Live") {
			if rs.Results[name] == nil {
				t.Fatalf("%s: missing collector %s", rs.Workload.Name, name)
			}
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	tab := testEval(t).Table2()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"GHOST(1)", "CFRAC", "NoGC", "Live", "Full"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	tab := testEval(t).Table3()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 3 has %d rows, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") {
				t.Fatalf("Table 3 cell %q missing p50/p90 separator", cell)
			}
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	tab := testEval(t).Table4()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 4 has %d rows", len(tab.Rows))
	}
}

func TestTable6Rendering(t *testing.T) {
	tab := testEval(t).Table6()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 6 has %d rows", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "29500") { // GHOST source lines
		t.Errorf("Table 6 missing metadata:\n%s", s)
	}
}

func TestFigure2CSV(t *testing.T) {
	ev := testEval(t)
	csv, err := ev.Figure2("GHOST(1)", "Full")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 10 {
		t.Fatalf("Figure 2 CSV too short: %d lines", len(lines))
	}
	if lines[0] != "allocatedKB,memKB,liveKB" {
		t.Fatalf("bad header %q", lines[0])
	}
	if _, err := ev.Figure2("GHOST(1)", "NopeCollector"); err == nil {
		t.Fatal("unknown collector accepted")
	}
	if _, err := ev.Figure2("NOPE", "Full"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigure2Series(t *testing.T) {
	ev := testEval(t)
	mem, live, err := ev.Figure2Series("GHOST(1)", "DtbMem")
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Points) == 0 || len(live.Points) == 0 {
		t.Fatal("empty series")
	}
	// The Figure-2 relationship: the collector's curve dominates the
	// live floor everywhere.
	for _, p := range mem.Points {
		if p.V+1e-9 < live.At(p.T) {
			t.Fatalf("memory %v below live %v at t=%v", p.V, live.At(p.T), p.T)
		}
	}
}

// The six acceptance criteria from DESIGN.md §6, checked on the
// scaled-down evaluation.

func TestClaimMemoryOrdering(t *testing.T) {
	ev := testEval(t)
	for _, rs := range ev.Runs {
		get := func(n string) float64 { return rs.Results[n].MemMeanBytes }
		live, full, nogc := get("Live"), get("Full"), get("NoGC")
		if !(live <= full+1 && full <= nogc+1) {
			t.Errorf("%s: ordering Live(%.0f) <= Full(%.0f) <= NoGC(%.0f) violated",
				rs.Workload.Name, live, full, nogc)
		}
		if get("Fixed4") > get("Fixed1")*1.05 {
			t.Errorf("%s: Fixed4 (%.0f) above Fixed1 (%.0f)",
				rs.Workload.Name, get("Fixed4"), get("Fixed1"))
		}
	}
}

func TestClaimDtbMemMeetsFeasibleConstraint(t *testing.T) {
	ev := testEval(t)
	budget := float64(ev.Options.MemMaxBytes)
	trigger := float64(ev.Options.TriggerBytes)
	for _, rs := range ev.Runs {
		dtb := rs.Results["DtbMem"]
		full := rs.Results["Full"]
		feasible := full.MemMaxBytes <= budget
		if feasible {
			if dtb.MemMaxBytes > budget+trigger {
				t.Errorf("%s: DtbMem max %.0f blew feasible budget %.0f (+trigger %.0f)",
					rs.Workload.Name, dtb.MemMaxBytes, budget, trigger)
			}
		} else if dtb.MemMaxBytes > full.MemMaxBytes*1.25 {
			// Over-constrained: should degrade toward Full (paper saw
			// within 7%; we allow 25% on the scaled runs).
			t.Errorf("%s: over-constrained DtbMem max %.0f not near Full %.0f",
				rs.Workload.Name, dtb.MemMaxBytes, full.MemMaxBytes)
		}
	}
}

func TestClaimFullExtremes(t *testing.T) {
	ev := testEval(t)
	for _, rs := range ev.Runs {
		full := rs.Results["Full"]
		for _, name := range CollectorOrder[1:] {
			r := rs.Results[name]
			if r.MemMaxBytes < full.MemMaxBytes-1e-9 {
				t.Errorf("%s: %s max memory %.0f below Full %.0f",
					rs.Workload.Name, name, r.MemMaxBytes, full.MemMaxBytes)
			}
			if r.TracedTotalBytes > full.TracedTotalBytes {
				t.Errorf("%s: %s traced %d above Full %d",
					rs.Workload.Name, name, r.TracedTotalBytes, full.TracedTotalBytes)
			}
		}
	}
}

func TestClaimDtbFMBeatsFeedMedMemoryOnEspresso(t *testing.T) {
	ev := testEval(t)
	for _, rs := range ev.Runs {
		if !strings.HasPrefix(rs.Workload.Name, "ESPRESSO") {
			continue
		}
		dtb := rs.Results["DtbFM"].MemMeanBytes
		fm := rs.Results["FeedMed"].MemMeanBytes
		if dtb > fm*1.02 {
			t.Errorf("%s: DtbFM mean %.0f should not exceed FeedMed %.0f",
				rs.Workload.Name, dtb, fm)
		}
	}
}

func TestClaimDtbFMMedianNearTarget(t *testing.T) {
	ev := testEval(t)
	m := PaperMachine()
	target := m.PauseSeconds(ev.Options.TraceMaxBytes)
	// On the workloads where the budget is attainable (everything but
	// SIS, whose young-survivor volume exceeds any boundary's reach),
	// the DtbFM median pause should land within 2x of the target.
	for _, rs := range ev.Runs {
		if rs.Workload.Name == "SIS" {
			continue
		}
		med := rs.Results["DtbFM"].MedianPauseSeconds()
		if med > target*2 {
			t.Errorf("%s: DtbFM median %.1f ms far above target %.1f ms",
				rs.Workload.Name, med*1000, target*1000)
		}
	}
}

func TestClaimFixed1LowestOverhead(t *testing.T) {
	ev := testEval(t)
	for _, rs := range ev.Runs {
		f1 := rs.Results["Fixed1"].TracedTotalBytes
		for _, name := range []string{"Full", "Fixed4"} {
			if rs.Results[name].TracedTotalBytes < f1 {
				t.Errorf("%s: %s traced less than Fixed1", rs.Workload.Name, name)
			}
		}
	}
}

func TestTable5Rendering(t *testing.T) {
	tab := testEval(t).Table5()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 5 has %d rows", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"GhostScript", "Espresso", "SIS", "Cfrac"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
}
